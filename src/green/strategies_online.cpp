// Online provisioning strategies from the literature (see the header
// for the algorithm provenance).  All three are pure state machines on
// simulated time: no RNG, no wall clock — the determinism contract the
// sweep engine relies on.
#include <algorithm>
#include <cmath>
#include <map>

#include "green/provisioning_strategy.hpp"

namespace greensched::green {

namespace {

/// Demand in cores after the headroom margin, never negative.
std::size_t padded_demand(std::size_t busy_cores, double headroom) {
  const double padded = static_cast<double>(busy_cores) * (1.0 + std::max(headroom, 0.0));
  return static_cast<std::size_t>(std::ceil(padded - 1e-9));
}

/// Smallest prefix of `order` (platform indices) whose cores cover
/// `demand_cores`.  Zero demand needs zero nodes — the shell's
/// min_candidates floor keeps the platform alive.
std::size_t covering_prefix(const cluster::Platform& platform,
                            const std::vector<std::size_t>& order, std::size_t demand_cores) {
  std::size_t covered = 0;
  std::size_t count = 0;
  for (const std::size_t index : order) {
    if (covered >= demand_cores) break;
    covered += platform.node(index).spec().cores;
    ++count;
  }
  return count;
}

/// The pool is saturated when every ON candidate core is busy — with no
/// queue visibility, saturation *is* the arrival signal that more
/// capacity is wanted (Lu & Chen power servers up as jobs arrive).
bool pool_saturated(const StrategyContext& ctx) {
  return ctx.pool_on_cores > 0 && ctx.pool_busy_cores >= ctx.pool_on_cores;
}

}  // namespace

// --- delayed-off (Lu & Chen) ---

DelayedOffStrategy::DelayedOffStrategy(DelayedOffOptions options) : options_(options) {}

StrategyDecision DelayedOffStrategy::decide(const StrategyContext& ctx) {
  if (!cached_delay_) {
    cached_delay_ = options_.delay > 0.0
                        ? options_.delay
                        : boot_break_even_seconds(*ctx.platform, *ctx.efficiency_order);
  }
  const std::size_t demand = padded_demand(ctx.status->busy_cores, options_.headroom);
  std::size_t needed = covering_prefix(*ctx.platform, *ctx.efficiency_order, demand);
  if (pool_saturated(ctx)) {
    needed = std::max(needed, ctx.candidate_count + options_.grow);
  }

  if (ctx.initial || needed >= ctx.candidate_count) {
    surplus_since_.reset();
    return StrategyDecision{needed, std::nullopt, true};
  }
  // Last-empty-server rule: hold the surplus until it has persisted past
  // the break-even delay, then release it all at once.
  if (!surplus_since_) surplus_since_ = ctx.now;
  if (ctx.now - *surplus_since_ + 1e-9 >= *cached_delay_) {
    surplus_since_.reset();
    return StrategyDecision{needed, std::nullopt, true};
  }
  return StrategyDecision{ctx.candidate_count, std::nullopt, true};
}

// --- consolidate (drain-assisted delayed-off) ---

ConsolidateStrategy::ConsolidateStrategy(ConsolidateOptions options) : options_(options) {}

StrategyDecision ConsolidateStrategy::decide(const StrategyContext& ctx) {
  if (!cached_delay_) {
    cached_delay_ = options_.delay > 0.0
                        ? options_.delay
                        : boot_break_even_seconds(*ctx.platform, *ctx.efficiency_order);
  }
  // Demand counts every busy core, including those on nodes already
  // being drained — their tasks land back inside the pool, so the pool
  // must have room for them.
  const std::size_t demand = padded_demand(ctx.status->busy_cores, options_.headroom);
  std::size_t needed = covering_prefix(*ctx.platform, *ctx.efficiency_order, demand);
  if (pool_saturated(ctx)) {
    needed = std::max(needed, ctx.candidate_count + options_.grow);
  }

  if (ctx.initial || needed >= ctx.candidate_count) {
    underused_since_.reset();
    return StrategyDecision{needed, std::nullopt, true};
  }

  // Shrink only out of sustained *underutilization*: unlike plain
  // delayed-off, a pool that is merely right-sized is left alone, so an
  // attached migration controller is never asked to churn tasks for a
  // marginal win.  An all-dark pool (capacity still booting) reads hot.
  const double pool_utilization =
      ctx.pool_on_cores == 0 ? 1.0
                             : static_cast<double>(ctx.pool_busy_cores) /
                                   static_cast<double>(ctx.pool_on_cores);
  if (pool_utilization > options_.trigger) {
    underused_since_.reset();
    return StrategyDecision{ctx.candidate_count, std::nullopt, true};
  }
  if (!underused_since_) underused_since_ = ctx.now;
  if (ctx.now - *underused_since_ + 1e-9 >= *cached_delay_) {
    underused_since_.reset();
    return StrategyDecision{needed, std::nullopt, true};
  }
  return StrategyDecision{ctx.candidate_count, std::nullopt, true};
}

// --- hetero-schedule (Albers & Quedenfeld style) ---

HeterogeneousScheduleStrategy::HeterogeneousScheduleStrategy(
    HeterogeneousScheduleOptions options)
    : options_(options) {}

void HeterogeneousScheduleStrategy::build_classes(const StrategyContext& ctx) {
  // Group the efficiency order by machine model; class order follows the
  // first appearance of each model, i.e. classes are themselves sorted
  // most efficient first.
  std::map<std::string, std::size_t> slot_of_model;
  for (const std::size_t index : *ctx.efficiency_order) {
    const std::string& model = ctx.platform->node(index).spec().model;
    auto [it, inserted] = slot_of_model.try_emplace(model, classes_.size());
    if (inserted) {
      MachineClass cls;
      cls.model = model;
      classes_.push_back(std::move(cls));
    }
    classes_[it->second].nodes.push_back(index);
  }
  for (MachineClass& cls : classes_) {
    cls.cumulative_cores.reserve(cls.nodes.size());
    std::size_t cores = 0;
    for (const std::size_t index : cls.nodes) {
      cores += ctx.platform->node(index).spec().cores;
      cls.cumulative_cores.push_back(cores);
    }
    cls.delay = options_.delay > 0.0 ? options_.delay
                                     : boot_break_even_seconds(*ctx.platform, cls.nodes);
  }
  built_ = true;
}

StrategyDecision HeterogeneousScheduleStrategy::decide(const StrategyContext& ctx) {
  if (!built_) build_classes(ctx);

  std::size_t demand = padded_demand(ctx.status->busy_cores, options_.headroom);
  if (pool_saturated(ctx)) {
    // One (or `grow`) more node's worth of demand than the pool covers,
    // so the allocation below opens capacity in the cheapest class that
    // still has spare machines.
    demand = std::max(demand, ctx.pool_on_cores + options_.grow);
  }

  // Allocate demand across classes, most efficient class first.
  std::size_t remaining = demand;
  std::vector<std::size_t> wanted(classes_.size(), 0);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const MachineClass& cls = classes_[c];
    std::size_t take = 0;
    while (take < cls.nodes.size() && remaining > (take == 0 ? 0 : cls.cumulative_cores[take - 1]))
      ++take;
    wanted[c] = take;
    const std::size_t covered = take == 0 ? 0 : cls.cumulative_cores[take - 1];
    remaining -= std::min(remaining, covered);
  }

  // Per-class delayed power-down: growth commits immediately, shrink
  // only after the class surplus outlived its break-even delay.
  std::size_t target = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    MachineClass& cls = classes_[c];
    if (ctx.initial || wanted[c] >= cls.keep) {
      cls.keep = wanted[c];
      cls.surplus_since.reset();
    } else {
      if (!cls.surplus_since) cls.surplus_since = ctx.now;
      if (ctx.now - *cls.surplus_since + 1e-9 >= cls.delay) {
        cls.keep = wanted[c];
        cls.surplus_since.reset();
      }
    }
    target += cls.keep;
  }

  // Candidacy order: each class's committed nodes first (so the shell's
  // prefix application realises the per-class split), then every
  // leftover node as FAILED-backfill reserve.
  std::vector<std::size_t> order;
  order.reserve(ctx.platform->node_count());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const MachineClass& cls = classes_[c];
    for (std::size_t i = 0; i < cls.keep && i < cls.nodes.size(); ++i)
      order.push_back(cls.nodes[i]);
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const MachineClass& cls = classes_[c];
    for (std::size_t i = cls.keep; i < cls.nodes.size(); ++i) order.push_back(cls.nodes[i]);
  }

  return StrategyDecision{target, std::move(order), true};
}

// --- reactive-idle (cloudsim_eec pattern) ---

ReactiveIdleTimeoutStrategy::ReactiveIdleTimeoutStrategy(ReactiveIdleOptions options)
    : options_(options) {}

StrategyDecision ReactiveIdleTimeoutStrategy::decide(const StrategyContext& ctx) {
  if (ctx.initial) {
    // Provision-on-arrival starts lean: cover whatever is already busy
    // plus the configured warm spares.
    const std::size_t needed =
        covering_prefix(*ctx.platform, *ctx.efficiency_order, ctx.status->busy_cores);
    return StrategyDecision{needed + options_.spare, std::nullopt, true};
  }

  // Treat an all-dark pool (everything still booting) as hot: capacity
  // was ordered for a reason and must not be cancelled by a zero sample.
  const double pool_utilization =
      ctx.pool_on_cores == 0 ? 1.0
                             : static_cast<double>(ctx.pool_busy_cores) /
                                   static_cast<double>(ctx.pool_on_cores);

  if (pool_utilization >= options_.up) {
    idle_since_.reset();
    return StrategyDecision{ctx.candidate_count + options_.burst, std::nullopt, true};
  }
  if (pool_utilization <= options_.down) {
    if (!idle_since_) idle_since_ = ctx.now;
    if (ctx.now - *idle_since_ + 1e-9 >= options_.idle) {
      idle_since_.reset();
      const std::size_t needed =
          covering_prefix(*ctx.platform, *ctx.efficiency_order, ctx.status->busy_cores);
      return StrategyDecision{needed + options_.spare, std::nullopt, true};
    }
    return StrategyDecision{ctx.candidate_count, std::nullopt, true};
  }
  idle_since_.reset();
  return StrategyDecision{ctx.candidate_count, std::nullopt, true};
}

}  // namespace greensched::green
