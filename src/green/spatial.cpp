#include "green/spatial.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace greensched::green {

using diet::Candidate;
using diet::EstTag;

namespace {
constexpr const char* kPenaltyTag = "thermal_penalty_watts";
}

SpatialThermalPolicy::SpatialThermalPolicy(SpatialThermalConfig config) : config_(config) {
  if (config_.penalty_watts_per_degree < 0.0)
    throw common::ConfigError("SpatialThermalPolicy: negative penalty");
}

void SpatialThermalPolicy::estimate(diet::EstimationVector& est,
                                    const diet::Request& /*request*/) const {
  const double temp = est.get_or(EstTag::kTemperatureCelsius, config_.soft_limit_celsius);
  const double excess = std::max(0.0, temp - config_.soft_limit_celsius);
  est.set_custom(kPenaltyTag, config_.penalty_watts_per_degree * excess);
}

double SpatialThermalPolicy::key(const diet::EstimationVector& est) const {
  // Measured power when learned, nameplate otherwise, a large constant
  // when nothing is known (explored last here: heat safety over learning
  // eagerness).
  const double watts = est.get_or(
      EstTag::kMeasuredPowerWatts, est.get_or(EstTag::kSpecPeakPowerWatts, 1e6));
  return watts + est.custom(kPenaltyTag).value_or(0.0);
}

void SpatialThermalPolicy::aggregate(std::vector<Candidate>& candidates,
                                     const diet::Request& /*request*/) const {
  // Key computed once per candidate; a NaN key (corrupt custom tag)
  // lands in the unknown-last bucket instead of breaking the sort.
  scratch_.sort(candidates, /*unknown_last=*/true, [this](const Candidate& c) {
    return RankedKey{false, key(c.estimation),
                     c.estimation.get_or(EstTag::kRandomDraw, 0.0)};
  });
}

}  // namespace greensched::green
