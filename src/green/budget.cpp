#include "green/budget.hpp"

#include "common/error.hpp"

namespace greensched::green {

using common::Joules;
using common::Seconds;
using common::Watts;

BudgetGovernor::BudgetGovernor(des::Simulator& sim, cluster::Platform& platform,
                               Provisioner& provisioner, BudgetConfig config)
    : sim_(sim),
      platform_(platform),
      provisioner_(provisioner),
      config_(config),
      process_(sim, config.check_period, [this](des::SimTime at) { return tick(at); }) {
  if (config_.budget_per_period.value() <= 0.0)
    throw common::ConfigError("BudgetGovernor: budget must be positive");
  if (config_.period.value() <= 0.0)
    throw common::ConfigError("BudgetGovernor: period must be positive");
  if (config_.check_period.value() > config_.period.value())
    throw common::ConfigError("BudgetGovernor: check period exceeds accounting period");
  if (config_.min_cap == 0)
    throw common::ConfigError("BudgetGovernor: min_cap must be at least 1");
}

BudgetGovernor::~BudgetGovernor() {
  if (started_) provisioner_.set_external_cap(std::nullopt);
}

void BudgetGovernor::start() {
  if (started_) throw common::StateError("BudgetGovernor: already started");
  started_ = true;
  const des::SimTime now = sim_.now();
  period_start_time_ = now.value();
  period_start_energy_ = platform_.total_energy(now).value();
  current_cap_ = platform_.node_count();
  process_.start();
}

Joules BudgetGovernor::spent_this_period() {
  return Joules(platform_.total_energy(sim_.now()).value() - period_start_energy_);
}

std::size_t BudgetGovernor::cap_for_allowance(Watts allowed) const {
  // Accumulate nameplate peaks over the provisioner's efficiency order
  // until the allowance is exhausted — the budget variant of Algorithm 1.
  std::size_t cap = 0;
  double accumulated = 0.0;
  for (std::size_t index : provisioner_.efficiency_order()) {
    accumulated += platform_.node(index).spec().peak_watts.value();
    if (accumulated > allowed.value()) break;
    ++cap;
  }
  return std::max(cap, config_.min_cap);
}

void BudgetGovernor::roll_period(des::SimTime at) {
  const double total = platform_.total_energy(at).value();
  const double spent = total - period_start_energy_;
  if (spent > config_.budget_per_period.value()) ++overruns_;
  ++periods_completed_;
  period_start_time_ += config_.period.value();
  // Approximation: spend accrued between the period boundary and this
  // check is charged to the period that just closed.
  period_start_energy_ = total;
}

bool BudgetGovernor::tick(des::SimTime at) {
  while (at.value() >= period_start_time_ + config_.period.value()) {
    roll_period(at);
  }

  const double spent = platform_.total_energy(at).value() - period_start_energy_;
  const double remaining_budget = config_.budget_per_period.value() - spent;
  const double remaining_time = period_start_time_ + config_.period.value() - at.value();

  std::size_t cap = config_.min_cap;
  if (remaining_budget > 0.0 && remaining_time > 0.0) {
    cap = cap_for_allowance(Watts(remaining_budget / remaining_time));
  }
  current_cap_ = cap;
  provisioner_.set_external_cap(cap);

  cap_series_.add(at.value(), static_cast<double>(cap));
  spend_series_.add(at.value(), spent);
  return true;
}

}  // namespace greensched::green
