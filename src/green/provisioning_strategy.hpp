// Pluggable provisioning strategies (ROADMAP item 2).
//
// The autonomic shell in `green::Provisioner` owns the mechanics of a
// check — reading the platform status, applying the candidate set with
// FAILED-node backfill, booting/draining nodes, recording the Fig. 9
// series — while the *decision* (how many candidates, and optionally in
// which order candidacy is granted) is delegated to a strategy behind
// this interface.  The paper's rule-fraction and power-cap modes are the
// first two strategies, ported bit-identically; the rest are competitive
// online algorithms from the literature:
//
//   delayed-off      Lu & Chen, "Simple and Effective Dynamic
//                    Provisioning for Power-Proportional Data Centers":
//                    capacity tracks demand, but the last empty server
//                    stays on for a timeout keyed to the boot-energy
//                    break-even.  Needs no prediction and carries a
//                    worst-case competitive ratio.
//   hetero-schedule  Albers & Quedenfeld-style per-machine-class on/off
//                    scheduling: demand is allocated across the
//                    heterogeneous Taurus/Orion/Sagittaire classes most
//                    efficient first, and each class powers down with
//                    its own break-even delay.
//   reactive-idle    The cloudsim_eec pattern: provision on arrival
//                    (pool runs hot -> boot a burst), shut down after a
//                    sustained idle timeout.
//
// Determinism contract: strategies are called from the simulation loop
// and must be pure functions of (context, own state).  No RNG, no wall
// clock, no iteration over unordered containers — a fixed seed plus a
// strategy spec must produce a bit-identical candidate series at any
// sweep `--jobs` count.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/platform.hpp"
#include "green/events.hpp"
#include "green/preferences.hpp"
#include "green/rules.hpp"

namespace greensched::green {

/// Everything a strategy may look at for one decision.  Pointers are
/// borrowed from the shell and valid only for the duration of the call.
struct StrategyContext {
  double now = 0.0;      ///< simulated seconds
  bool initial = false;  ///< the un-ramped start() decision
  /// Platform status with the forecaster's utilization override already
  /// applied (Section III-B) — what the legacy modes decided on.
  const PlatformStatus* status = nullptr;
  const cluster::Platform* platform = nullptr;
  const EventSchedule* events = nullptr;
  const RuleEngine* rules = nullptr;
  /// Provider preference weights (Eq. 1), for power-cap style decisions.
  const ProviderPreference* provider = nullptr;
  /// Platform node indices by nameplate GreenPerf, most efficient first.
  const std::vector<std::size_t>* efficiency_order = nullptr;
  double check_period = 600.0;
  double lookahead = 1200.0;
  std::size_t ramp_up_step = 2;
  /// The pool as of the previous check.
  std::size_t candidate_count = 0;
  /// Busy / total cores over candidate nodes that are powered ON — the
  /// demand signal reactive strategies act on.
  std::size_t pool_busy_cores = 0;
  std::size_t pool_on_cores = 0;
};

/// One decision: a target pool size, an optional candidacy order, and
/// whether the shell's progressive ramp applies.
struct StrategyDecision {
  std::size_t target = 0;
  /// When set, candidacy (and power management) follows this order of
  /// platform node indices instead of the GreenPerf efficiency order.
  /// Must be a permutation of [0, node_count).
  std::optional<std::vector<std::size_t>> order;
  /// True = the strategy paces pool changes itself; the shell applies
  /// `target` directly instead of ramping toward it.
  bool immediate = false;
};

class ProvisioningStrategy {
 public:
  virtual ~ProvisioningStrategy() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual StrategyDecision decide(const StrategyContext& ctx) = 0;
};

// --- legacy modes, ported bit-identically from the PR-5 Provisioner ---

/// Shared pre-ramp logic of the two paper modes: a scheduled tariff
/// change visible within the lookahead paces the ramp so the pool
/// reaches the future target exactly when the tariff changes.
class StatusTargetStrategy : public ProvisioningStrategy {
 public:
  [[nodiscard]] StrategyDecision decide(const StrategyContext& ctx) final;

 protected:
  [[nodiscard]] virtual std::size_t base_target(const StrategyContext& ctx,
                                                const PlatformStatus& status) const = 0;
};

/// Threshold rules -> fraction of all nodes (Section IV-C, Fig. 9).
class RuleFractionStrategy final : public StatusTargetStrategy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "rule-fraction"; }

 protected:
  [[nodiscard]] std::size_t base_target(const StrategyContext& ctx,
                                        const PlatformStatus& status) const override;
};

/// Algorithm 1: GreenPerf-sorted greedy under Preference_provider x P_total.
class PowerCapStrategy final : public StatusTargetStrategy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "power-cap"; }

 protected:
  [[nodiscard]] std::size_t base_target(const StrategyContext& ctx,
                                        const PlatformStatus& status) const override;
};

// --- literature strategies ---

struct DelayedOffOptions {
  /// Seconds the pool holds surplus capacity before powering it down.
  /// 0 = derive the boot-energy break-even from the platform catalog.
  double delay = 0.0;
  /// Extra capacity fraction kept on top of measured demand.
  double headroom = 0.0;
  /// Nodes added per check while the pool is saturated.
  std::size_t grow = 2;
};

/// Lu & Chen delayed-off: capacity tracks demand upward immediately,
/// downward only after the surplus persisted past the break-even delay.
class DelayedOffStrategy final : public ProvisioningStrategy {
 public:
  explicit DelayedOffStrategy(DelayedOffOptions options = {});
  [[nodiscard]] const char* name() const noexcept override { return "delayed-off"; }
  [[nodiscard]] StrategyDecision decide(const StrategyContext& ctx) override;
  [[nodiscard]] const DelayedOffOptions& options() const noexcept { return options_; }

 private:
  DelayedOffOptions options_;
  std::optional<double> surplus_since_;
  std::optional<double> cached_delay_;
};

struct HeterogeneousScheduleOptions {
  /// Per-class power-down delay; 0 = each class's own break-even.
  double delay = 0.0;
  double headroom = 0.0;
  /// Nodes added per check while the pool is saturated.
  std::size_t grow = 1;
};

/// Albers & Quedenfeld-style heterogeneous on/off scheduling: demand is
/// allocated across machine classes most efficient first, and every
/// class runs its own delayed power-down timer.  Emits a candidacy
/// order override so the per-class allocation survives the shell's
/// prefix-based candidate application.
class HeterogeneousScheduleStrategy final : public ProvisioningStrategy {
 public:
  explicit HeterogeneousScheduleStrategy(HeterogeneousScheduleOptions options = {});
  [[nodiscard]] const char* name() const noexcept override { return "hetero-schedule"; }
  [[nodiscard]] StrategyDecision decide(const StrategyContext& ctx) override;
  [[nodiscard]] std::size_t class_count() const noexcept { return classes_.size(); }

 private:
  struct MachineClass {
    std::string model;
    std::vector<std::size_t> nodes;  ///< platform indices, efficiency order
    std::vector<std::size_t> cumulative_cores;
    double delay = 0.0;
    std::size_t keep = 0;  ///< committed on-count
    std::optional<double> surplus_since;
  };

  void build_classes(const StrategyContext& ctx);

  HeterogeneousScheduleOptions options_;
  std::vector<MachineClass> classes_;
  bool built_ = false;
};

struct ReactiveIdleOptions {
  double up = 0.8;      ///< pool utilization that triggers growth
  double down = 0.3;    ///< pool utilization that arms the idle timer
  double idle = 300.0;  ///< seconds below `down` before surplus drops
  std::size_t burst = 2;  ///< nodes provisioned per growth trigger
  std::size_t spare = 1;  ///< warm nodes kept above demand when shrinking
};

/// cloudsim_eec-style reactive provisioning: boot a burst when the pool
/// runs hot, release all surplus at once after a sustained idle period.
class ReactiveIdleTimeoutStrategy final : public ProvisioningStrategy {
 public:
  explicit ReactiveIdleTimeoutStrategy(ReactiveIdleOptions options = {});
  [[nodiscard]] const char* name() const noexcept override { return "reactive-idle"; }
  [[nodiscard]] StrategyDecision decide(const StrategyContext& ctx) override;
  [[nodiscard]] const ReactiveIdleOptions& options() const noexcept { return options_; }

 private:
  ReactiveIdleOptions options_;
  std::optional<double> idle_since_;
};

struct ConsolidateOptions {
  /// Seconds the underutilization must persist before the pool shrinks.
  /// 0 = derive the boot-energy break-even from the platform catalog.
  double delay = 0.0;
  /// Extra capacity fraction kept on top of measured demand.
  double headroom = 0.0;
  /// Nodes added per check while the pool is saturated.
  std::size_t grow = 2;
  /// Pool utilization at or below which consolidation engages.
  double trigger = 0.5;
};

/// Idle consolidation (the cloudsim_eec algo-#3 loop, driven by our
/// wattmeter-measured demand): size the pool like delayed-off, but only
/// release surplus after the pool ran *underutilized* (<= trigger) for
/// the break-even delay.  Designed to pair with a --migration drain
/// hook: once the pool shrinks, the MigrationController actively empties
/// the dropped nodes instead of waiting for tasks to finish, and the
/// shell's power manager turns them off.  Works without migration too —
/// it then degrades to a more conservative delayed-off.
class ConsolidateStrategy final : public ProvisioningStrategy {
 public:
  explicit ConsolidateStrategy(ConsolidateOptions options = {});
  [[nodiscard]] const char* name() const noexcept override { return "consolidate"; }
  [[nodiscard]] StrategyDecision decide(const StrategyContext& ctx) override;
  [[nodiscard]] const ConsolidateOptions& options() const noexcept { return options_; }

 private:
  ConsolidateOptions options_;
  std::optional<double> underused_since_;
  std::optional<double> cached_delay_;
};

// --- registry ---

/// Builds a strategy from a spec: "name" or "name:key=value,...".
/// Throws ConfigError on an unknown name, unknown key or bad value.
[[nodiscard]] std::unique_ptr<ProvisioningStrategy> make_provisioning_strategy(
    const std::string& spec);

/// All registered strategy names, in documentation order.
[[nodiscard]] std::vector<std::string> provisioning_strategy_names();

/// The name part of a spec (everything before the first ':').
[[nodiscard]] std::string provisioning_strategy_base_name(const std::string& spec);

/// True when the spec's name part is a registered strategy.
[[nodiscard]] bool is_provisioning_strategy(const std::string& spec);

/// One usage block per strategy ("name[:k=v,...]  description"), for the
/// CLI help text.  Every line is prefixed with `indent`.
[[nodiscard]] std::string provisioning_strategy_help(const std::string& indent);

/// Mean per-node boot-energy break-even over `nodes` (platform indices):
/// how long an idle node must stay off before the shutdown+boot cycle
/// pays for itself.  The auto delay of the delayed-off strategies.
[[nodiscard]] double boot_break_even_seconds(const cluster::Platform& platform,
                                             const std::vector<std::size_t>& nodes);

}  // namespace greensched::green
