// The preference-weighted server score (Section III-C, Eqs. 6-7).
//
//   Sc(P) = time^(2/(P+1) - 1) * energy
//
// Limits (Eq. 7): P -> -0.9 makes the exponent large (score is dominated
// by computation time, i.e. performance-seeking); P = 0 gives the
// time*energy product; P -> +0.9 flattens the time term (score tracks
// energy, i.e. efficiency-seeking).  Lower scores are better.
#pragma once

#include "common/units.hpp"
#include "green/cost_model.hpp"
#include "green/preferences.hpp"

namespace greensched::green {

/// The time exponent 2/(P+1) - 1 for user preference P.
[[nodiscard]] double score_exponent(const UserPreference& preference) noexcept;

/// Eq. 6 from already-computed time and energy; both must be positive.
[[nodiscard]] double score(common::Seconds computation_time, common::Joules energy,
                           const UserPreference& preference);

/// Full pipeline: Eq. 4 + Eq. 5 + Eq. 6 for a task of `work` FLOPs.
[[nodiscard]] double score_server(const ServerCostInputs& server, common::Flops work,
                                  const UserPreference& preference);

}  // namespace greensched::green
