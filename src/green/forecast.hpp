// Resource-usage forecasting (Section III-B).
//
// The provider preference's utilization term is meant to come from a
// forecast: "Resource usage forecast: using historical data to identify
// patterns and ensure the responsiveness of the platform during peak
// periods."  This module records utilization samples and predicts the
// next period with three estimators:
//
//   kLastValue   — naive hold,
//   kWindowMean  — mean of the trailing window,
//   kSeasonal    — mean of samples one season (e.g. one day) apart:
//                  picks up the daily peak pattern the paper targets.
//
// The provisioner (kPowerCap mode) can read the forecast instead of the
// instantaneous utilization, so the pool is sized for the *coming*
// period — provisioned before the peak arrives.
#pragma once

#include <cstddef>
#include <optional>

#include "common/stats.hpp"

namespace greensched::green {

enum class ForecastMethod { kLastValue, kWindowMean, kSeasonal };

struct ForecasterConfig {
  ForecastMethod method = ForecastMethod::kSeasonal;
  /// Trailing samples used by kWindowMean (and the seasonal fallback).
  std::size_t window = 6;
  /// Season length in seconds for kSeasonal (default: one day).
  double season_seconds = 86400.0;
  /// Tolerance when matching "one season ago" timestamps.
  double season_slack_seconds = 600.0;
  /// Seasons averaged by kSeasonal.
  std::size_t seasons = 3;
};

class UsageForecaster {
 public:
  explicit UsageForecaster(ForecasterConfig config = {});

  /// Records a utilization sample in [0, 1] at time `t` (non-decreasing).
  void observe(double t, double utilization);

  /// Predicts utilization at future time `t`; nullopt with no history.
  [[nodiscard]] std::optional<double> predict(double t) const;
  /// Convenience: prediction clamped to [0,1] with a fallback value.
  [[nodiscard]] double predict_or(double t, double fallback) const;

  [[nodiscard]] std::size_t samples() const noexcept { return history_.size(); }
  [[nodiscard]] const common::TimeSeries& history() const noexcept { return history_; }

  /// Mean absolute error of one-step-ahead predictions so far (how well
  /// the chosen method fits this platform's pattern); nullopt until at
  /// least two samples arrived.
  [[nodiscard]] std::optional<double> mean_absolute_error() const;

 private:
  [[nodiscard]] std::optional<double> predict_last() const;
  [[nodiscard]] std::optional<double> predict_window_mean() const;
  [[nodiscard]] std::optional<double> predict_seasonal(double t) const;

  ForecasterConfig config_;
  common::TimeSeries history_;
  double abs_error_sum_ = 0.0;
  std::size_t error_count_ = 0;
};

}  // namespace greensched::green
