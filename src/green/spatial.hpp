// Spatially-/thermally-aware scheduling (the paper's future-work item).
//
// SpatialThermalPolicy ranks like POWER but charges every candidate a
// penalty proportional to how far its measured temperature exceeds a
// soft limit.  With the rack thermal coupler active, this makes the
// scheduler steer work away from hot racks before the administrator's
// hard 25 degC rule would cut the candidate pool — trading a little
// placement quality for thermal headroom.
#pragma once

#include "diet/plugin.hpp"
#include "green/ranking.hpp"

namespace greensched::green {

struct SpatialThermalConfig {
  double soft_limit_celsius = 24.0;  ///< below the 25 degC hard rule
  /// Equivalent watts charged per degree above the soft limit.
  double penalty_watts_per_degree = 50.0;
};

class SpatialThermalPolicy final : public diet::PluginScheduler {
 public:
  explicit SpatialThermalPolicy(SpatialThermalConfig config = {});

  [[nodiscard]] std::string name() const override { return "SPATIAL-THERMAL"; }

  /// Server-side hook: precomputes the penalty into a custom tag so the
  /// agents sort on a ready-made key.
  void estimate(diet::EstimationVector& est, const diet::Request& request) const override;
  void aggregate(std::vector<diet::Candidate>& candidates,
                 const diet::Request& request) const override;

  [[nodiscard]] std::unique_ptr<diet::PluginScheduler> clone_for_shard() const override {
    return std::make_unique<SpatialThermalPolicy>(config_);
  }

  /// The effective ranking key for a vector (power + thermal penalty);
  /// exposed for tests.
  [[nodiscard]] double key(const diet::EstimationVector& est) const;

 private:
  SpatialThermalConfig config_;
  mutable RankScratch scratch_;  ///< policies are single-run, single-threaded
};

}  // namespace greensched::green
