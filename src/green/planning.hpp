// Provisioning planning (Section III-C / Fig. 8).
//
// A time-stamped record of the platform status — temperature, number of
// candidate nodes, electricity cost — shared between the provisioner (the
// writer) and any monitoring or forecasting component (readers) through a
// readers-writer lock, and serialized as the XML file of Fig. 8:
//
//   <timestamp value="1385896446">
//     <temperature>23.5</temperature>
//     <candidates>8</candidates>
//     <electricity_cost>0.6</electricity_cost>
//   </timestamp>
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rw_lock.hpp"
#include "xmlite/xml.hpp"

namespace greensched::green {

struct PlanningEntry {
  double timestamp = 0.0;  ///< simulated seconds (or epoch seconds)
  double temperature = 0.0;
  std::size_t candidates = 0;
  double electricity_cost = 0.0;

  /// Throws common::ConfigError on non-finite fields — NaN timestamps
  /// would silently break the sorted-insert invariant.
  void validate() const;
};

/// Write-ahead hook: add_entry() hands each entry to the observer
/// *before* taking the write lock, so a durability layer (see
/// durable::PlanningStore) can persist the mutation ahead of applying
/// it — the classic WAL ordering.  Observers must be thread-safe if the
/// planning is written from several threads.
class PlanningObserver {
 public:
  virtual ~PlanningObserver() = default;
  virtual void on_add(const PlanningEntry& entry) = 0;
};

class ProvisioningPlanning {
 public:
  ProvisioningPlanning() = default;
  ProvisioningPlanning(const ProvisioningPlanning&) = delete;
  ProvisioningPlanning& operator=(const ProvisioningPlanning&) = delete;

  /// Inserts (or replaces, for an equal timestamp) an entry; keeps the
  /// record sorted.  Takes the write lock.  Validates the entry and
  /// notifies the observer (write-ahead) first.
  void add_entry(const PlanningEntry& entry);

  /// Attaches a write-ahead observer (nullptr detaches).  With no
  /// observer the hot path costs one predictable branch — journaling
  /// disabled is zero-overhead.  Not synchronized against concurrent
  /// add_entry; attach before the writers start.
  void set_observer(PlanningObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] PlanningObserver* observer() const noexcept { return observer_; }

  /// Latest entry with timestamp <= t.  Takes the read lock.
  [[nodiscard]] std::optional<PlanningEntry> at_or_before(double t) const;
  /// Earliest entry with timestamp > t (the scheduler's forecast peek).
  [[nodiscard]] std::optional<PlanningEntry> next_after(double t) const;
  /// Entries with t0 <= timestamp <= t1, in time order.
  [[nodiscard]] std::vector<PlanningEntry> between(double t0, double t1) const;
  [[nodiscard]] std::vector<PlanningEntry> all() const;
  [[nodiscard]] std::size_t size() const;

  // --- XML round trip (the Fig. 8 file format) ---
  [[nodiscard]] xmlite::Document to_xml() const;
  /// Replaces the contents from a parsed planning document; throws
  /// ParseError on malformed input, including duplicate or non-finite
  /// timestamps (the sorted-insert invariant admits neither).  The
  /// observer is NOT notified — loading is recovery, not mutation.
  void load_xml(const xmlite::Document& doc);
  /// Serializes to / parses from text.
  [[nodiscard]] std::string to_xml_string() const;
  void load_xml_string(const std::string& text);

  /// Lock observability (micro-benchmarks and tests).
  [[nodiscard]] std::uint64_t reads() const noexcept { return lock_.shared_acquisitions(); }
  [[nodiscard]] std::uint64_t writes() const noexcept { return lock_.exclusive_acquisitions(); }

 private:
  mutable common::ReadersWriterLock lock_;
  std::vector<PlanningEntry> entries_;  ///< sorted by timestamp
  PlanningObserver* observer_ = nullptr;
};

}  // namespace greensched::green
