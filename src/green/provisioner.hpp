// Adaptive resource provisioner (Sections III-C and IV-C).
//
// An autonomic loop checks the platform status on a fixed period (the
// paper: every 10 minutes, with visibility of scheduled events 20 minutes
// ahead), derives the allowed number of candidate nodes from the
// administrator's threshold rules (or from Algorithm 1's power cap), and
// moves the candidate pool toward that target *progressively* — ramping
// up slowly "to avoid heat peaks due to side effects of simultaneous
// starts", and draining down without killing running tasks.  Candidate
// membership is enforced in the Master Agent through a candidate filter,
// and non-candidate nodes are powered off once idle.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "cluster/platform.hpp"
#include "common/stats.hpp"
#include "des/simulator.hpp"
#include "diet/agent.hpp"
#include "green/candidate_selection.hpp"
#include "green/events.hpp"
#include "green/forecast.hpp"
#include "green/planning.hpp"
#include "green/preferences.hpp"
#include "green/rules.hpp"

namespace greensched::green {

/// How the per-tick candidate target is derived.
enum class ProvisioningMode {
  kRuleFraction,  ///< threshold rules -> fraction of all nodes (Fig. 9)
  kPowerCap,      ///< Algorithm 1 with Preference_provider(u, c)
};

struct ProvisionerConfig {
  des::SimDuration check_period{600.0};  ///< the paper's 10 minutes
  des::SimDuration lookahead{1200.0};    ///< visibility of events at t+20 min
  std::size_t ramp_up_step = 2;          ///< candidates added per check
  std::size_t ramp_down_step = 4;        ///< candidates removed per check
  std::size_t min_candidates = 1;        ///< never starve the platform
  bool manage_node_power = true;         ///< boot/shutdown with candidacy
  ProvisioningMode mode = ProvisioningMode::kRuleFraction;
  /// Only used in kPowerCap mode (Eq. 1 weights).
  ProviderPreference provider{0.5, 0.5};
  /// Size the pool for *forecast* utilization (Section III-B's "resource
  /// usage forecast") instead of the instantaneous value.
  bool forecast_utilization = false;
  ForecasterConfig forecaster{};
};

class Provisioner {
 public:
  Provisioner(des::Simulator& sim, cluster::Platform& platform, diet::MasterAgent& master,
              RuleEngine rules, const EventSchedule& events, ProvisioningPlanning& planning,
              ProvisionerConfig config = {});
  ~Provisioner();
  Provisioner(const Provisioner&) = delete;
  Provisioner& operator=(const Provisioner&) = delete;

  /// Installs the MA candidate filter, applies the initial candidate set
  /// (un-ramped) and starts the periodic check.
  void start();
  void stop() noexcept { process_.stop(); }

  // --- observability ---
  [[nodiscard]] std::size_t candidate_count() const noexcept { return candidate_count_; }
  [[nodiscard]] const std::vector<common::NodeId>& candidates() const noexcept {
    return candidate_ids_;
  }
  [[nodiscard]] bool is_candidate(common::NodeId node) const noexcept;
  /// Cores available on candidate nodes that are powered on (what a
  /// saturating client should target).
  [[nodiscard]] std::size_t candidate_capacity() const;
  /// (time, candidate count) per check — the Fig. 9 plain line.
  [[nodiscard]] const common::TimeSeries& candidate_series() const noexcept {
    return candidate_series_;
  }
  /// (time, mean platform watts over the preceding period) per check —
  /// the Fig. 9 crosses line.
  [[nodiscard]] const common::TimeSeries& power_series() const noexcept { return power_series_; }
  [[nodiscard]] std::uint64_t checks() const noexcept { return process_.ticks(); }
  [[nodiscard]] const PlatformStatus& last_status() const noexcept { return last_status_; }
  /// Candidate-set applications that had to skip FAILED nodes (graceful
  /// degradation: crashed machines never occupy candidacy slots, the
  /// pool backfills from the next-most-efficient healthy nodes).
  [[nodiscard]] std::uint64_t degraded_checks() const noexcept { return degraded_checks_; }

  /// Hook fired after every check (testing / tracing).
  void set_check_hook(std::function<void(des::SimTime, const PlatformStatus&, std::size_t)> hook) {
    check_hook_ = std::move(hook);
  }

  /// External candidate cap (e.g. from a BudgetGovernor): the per-check
  /// target never exceeds it while set.  Ramping still applies.
  void set_external_cap(std::optional<std::size_t> cap) noexcept { external_cap_ = cap; }
  [[nodiscard]] std::optional<std::size_t> external_cap() const noexcept {
    return external_cap_;
  }

  /// Nodes ordered by nameplate GreenPerf, most efficient first — the
  /// order in which candidacy is granted.
  [[nodiscard]] const std::vector<std::size_t>& efficiency_order() const noexcept {
    return efficiency_order_;
  }

  /// The usage forecaster (null unless forecast_utilization is on).
  [[nodiscard]] const UsageForecaster* forecaster() const noexcept {
    return forecaster_ ? &*forecaster_ : nullptr;
  }

 private:
  bool tick(des::SimTime at);
  /// Validates before members (notably the periodic process) are built.
  static ProvisionerConfig checked(ProvisionerConfig config, std::size_t node_count);
  [[nodiscard]] PlatformStatus read_status(des::SimTime at);
  [[nodiscard]] std::size_t target_for(const PlatformStatus& status) const;
  void apply_candidate_set(des::SimTime at);
  void manage_power(des::SimTime at);

  des::Simulator& sim_;
  cluster::Platform& platform_;
  diet::MasterAgent& master_;
  RuleEngine rules_;
  const EventSchedule& events_;
  ProvisioningPlanning& planning_;
  ProvisionerConfig config_;

  std::vector<std::size_t> efficiency_order_;  ///< platform node indices
  std::optional<UsageForecaster> forecaster_;
  std::optional<std::size_t> external_cap_;
  std::size_t candidate_count_ = 0;
  std::vector<common::NodeId> candidate_ids_;
  std::uint64_t degraded_checks_ = 0;
  bool started_ = false;

  common::TimeSeries candidate_series_;
  common::TimeSeries power_series_;
  double last_energy_joules_ = 0.0;
  double last_energy_time_ = 0.0;
  PlatformStatus last_status_;
  std::function<void(des::SimTime, const PlatformStatus&, std::size_t)> check_hook_;

  des::PeriodicProcess process_;
};

}  // namespace greensched::green
