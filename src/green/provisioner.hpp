// Adaptive resource provisioner (Sections III-C and IV-C).
//
// An autonomic loop checks the platform status on a fixed period (the
// paper: every 10 minutes, with visibility of scheduled events 20 minutes
// ahead) and moves the candidate pool toward a per-check target —
// ramping up slowly "to avoid heat peaks due to side effects of
// simultaneous starts", and draining down without killing running tasks.
// Candidate membership is enforced in the Master Agent through a
// candidate filter, and non-candidate nodes are powered off once idle.
//
// Since PR 6 the Provisioner is a thin autonomic *shell*: how the target
// is derived (threshold rules, Algorithm 1's power cap, or one of the
// online algorithms from the literature) is delegated to a pluggable
// `ProvisioningStrategy` (provisioning_strategy.hpp).  The shell keeps
// everything a strategy must not reimplement: status sampling, the
// external cap clamp, the min-candidates floor, the progressive ramp,
// candidate-set application with FAILED-node backfill, node power
// management, and the Fig. 8 planning / Fig. 9 series records.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/platform.hpp"
#include "common/stats.hpp"
#include "des/simulator.hpp"
#include "diet/agent.hpp"
#include "green/candidate_selection.hpp"
#include "green/events.hpp"
#include "green/forecast.hpp"
#include "green/planning.hpp"
#include "green/preferences.hpp"
#include "green/provisioning_strategy.hpp"
#include "green/rules.hpp"

namespace greensched::green {

/// How the per-tick candidate target is derived.
enum class ProvisioningMode {
  kRuleFraction,  ///< threshold rules -> fraction of all nodes (Fig. 9)
  kPowerCap,      ///< Algorithm 1 with Preference_provider(u, c)
};

struct ProvisionerConfig {
  des::SimDuration check_period{600.0};  ///< the paper's 10 minutes
  des::SimDuration lookahead{1200.0};    ///< visibility of events at t+20 min
  std::size_t ramp_up_step = 2;          ///< candidates added per check
  std::size_t ramp_down_step = 4;        ///< candidates removed per check
  std::size_t min_candidates = 1;        ///< never starve the platform
  bool manage_node_power = true;         ///< boot/shutdown with candidacy
  ProvisioningMode mode = ProvisioningMode::kRuleFraction;
  /// Strategy spec ("name" or "name:key=value,..."; see
  /// provisioning_strategy.hpp).  Empty = derived from `mode`, which
  /// keeps every pre-PR-6 configuration bit-identical.
  std::string strategy;
  /// Only used by the power-cap strategy (Eq. 1 weights).
  ProviderPreference provider{0.5, 0.5};
  /// Size the pool for *forecast* utilization (Section III-B's "resource
  /// usage forecast") instead of the instantaneous value.
  bool forecast_utilization = false;
  ForecasterConfig forecaster{};
};

class Provisioner {
 public:
  Provisioner(des::Simulator& sim, cluster::Platform& platform, diet::MasterAgent& master,
              RuleEngine rules, const EventSchedule& events, ProvisioningPlanning& planning,
              ProvisionerConfig config = {});
  ~Provisioner();
  Provisioner(const Provisioner&) = delete;
  Provisioner& operator=(const Provisioner&) = delete;

  /// Installs the MA candidate filter, applies the initial candidate set
  /// (un-ramped) and starts the periodic check.
  void start();
  void stop() noexcept { process_.stop(); }

  // --- observability ---
  [[nodiscard]] std::size_t candidate_count() const noexcept { return candidate_count_; }
  [[nodiscard]] const std::vector<common::NodeId>& candidates() const noexcept {
    return candidate_ids_;
  }
  [[nodiscard]] bool is_candidate(common::NodeId node) const noexcept;
  /// Cores available on candidate nodes that are powered on (what a
  /// saturating client should target).
  [[nodiscard]] std::size_t candidate_capacity() const;
  /// (time, candidate count) per check — the Fig. 9 plain line.
  [[nodiscard]] const common::TimeSeries& candidate_series() const noexcept {
    return candidate_series_;
  }
  /// (time, mean platform watts over the preceding period) per check —
  /// the Fig. 9 crosses line.
  [[nodiscard]] const common::TimeSeries& power_series() const noexcept { return power_series_; }
  [[nodiscard]] std::uint64_t checks() const noexcept { return process_.ticks(); }
  [[nodiscard]] const PlatformStatus& last_status() const noexcept { return last_status_; }
  /// Candidate-set applications that had to skip FAILED nodes (graceful
  /// degradation: crashed machines never occupy candidacy slots, the
  /// pool backfills from the next-most-efficient healthy nodes).
  [[nodiscard]] std::uint64_t degraded_checks() const noexcept { return degraded_checks_; }
  /// Checks whose target was actually reduced by the external cap.
  [[nodiscard]] std::uint64_t cap_clamped_checks() const noexcept { return cap_clamped_checks_; }
  /// Node power-on / power-off commands this provisioner issued.
  [[nodiscard]] std::uint64_t boots_ordered() const noexcept { return boots_ordered_; }
  [[nodiscard]] std::uint64_t shutdowns_ordered() const noexcept { return shutdowns_ordered_; }
  /// The strategy's most recent (capped, floored) target.
  [[nodiscard]] std::size_t last_target() const noexcept { return last_target_; }
  /// Mean |target - applied pool size| over all checks — the reactivity
  /// gap: 0 means the pool always kept up with the strategy's wishes.
  [[nodiscard]] double mean_target_gap() const noexcept {
    const std::uint64_t n = checks();
    return n == 0 ? 0.0 : target_gap_sum_ / static_cast<double>(n);
  }
  /// The active strategy.
  [[nodiscard]] const ProvisioningStrategy& strategy() const noexcept { return *strategy_; }

  /// When set, the periodic check stops (permanently) at the first tick
  /// where the predicate is true — lets an experiment harness drain the
  /// event queue once its clients settled instead of ticking forever.
  void set_stop_predicate(std::function<bool()> predicate) {
    stop_predicate_ = std::move(predicate);
  }

  /// Hook fired after every check (testing / tracing).
  void set_check_hook(std::function<void(des::SimTime, const PlatformStatus&, std::size_t)> hook) {
    check_hook_ = std::move(hook);
  }

  /// Drain hook: fired on every periodic check that leaves busy
  /// non-candidate nodes behind, with the nodes to empty (reverse
  /// candidacy order — least efficient first) and the powered-on
  /// candidates to move their tasks onto (candidacy order).  The
  /// migration controller plugs in here; without a hook the shell keeps
  /// its historical behaviour of waiting for natural drains.
  using DrainHook = std::function<void(des::SimTime, const std::vector<common::NodeId>&,
                                       const std::vector<common::NodeId>&)>;
  void set_drain_hook(DrainHook hook) { drain_hook_ = std::move(hook); }
  /// Busy non-candidate nodes handed to the drain hook, summed per check.
  [[nodiscard]] std::uint64_t drain_requests() const noexcept { return drain_requests_; }

  /// External candidate cap (e.g. from a BudgetGovernor): the per-check
  /// target never exceeds it while set.  Ramping still applies.
  void set_external_cap(std::optional<std::size_t> cap) noexcept { external_cap_ = cap; }
  [[nodiscard]] std::optional<std::size_t> external_cap() const noexcept {
    return external_cap_;
  }

  /// Nodes ordered by nameplate GreenPerf, most efficient first — the
  /// order in which candidacy is granted.
  [[nodiscard]] const std::vector<std::size_t>& efficiency_order() const noexcept {
    return efficiency_order_;
  }

  /// The usage forecaster (null unless forecast_utilization is on).
  [[nodiscard]] const UsageForecaster* forecaster() const noexcept {
    return forecaster_ ? &*forecaster_ : nullptr;
  }

 private:
  bool tick(des::SimTime at);
  /// Validates before members (notably the periodic process) are built.
  static ProvisionerConfig checked(ProvisionerConfig config, std::size_t node_count);
  [[nodiscard]] PlatformStatus read_status(des::SimTime at);
  /// Asks the strategy for a decision, then applies the shell-owned
  /// policy: external cap clamp and min-candidates floor on the target,
  /// order-override validation.
  [[nodiscard]] std::size_t decide(des::SimTime at, const PlatformStatus& status, bool initial);
  /// The candidacy order in force: the strategy's override, else
  /// nameplate GreenPerf.
  [[nodiscard]] const std::vector<std::size_t>& candidacy_order() const noexcept {
    return order_override_ ? *order_override_ : efficiency_order_;
  }
  void apply_candidate_set(des::SimTime at);
  void manage_power(des::SimTime at);
  void fire_drain_hook(des::SimTime at);

  des::Simulator& sim_;
  cluster::Platform& platform_;
  diet::MasterAgent& master_;
  RuleEngine rules_;
  const EventSchedule& events_;
  ProvisioningPlanning& planning_;
  ProvisionerConfig config_;

  std::vector<std::size_t> efficiency_order_;  ///< platform node indices
  std::unique_ptr<ProvisioningStrategy> strategy_;
  std::optional<std::vector<std::size_t>> order_override_;
  std::optional<UsageForecaster> forecaster_;
  std::optional<std::size_t> external_cap_;
  std::size_t candidate_count_ = 0;
  std::size_t last_target_ = 0;
  bool immediate_ = false;  ///< last decision bypasses the shell ramp
  std::vector<common::NodeId> candidate_ids_;
  std::uint64_t degraded_checks_ = 0;
  std::uint64_t cap_clamped_checks_ = 0;
  std::uint64_t boots_ordered_ = 0;
  std::uint64_t shutdowns_ordered_ = 0;
  std::uint64_t drain_requests_ = 0;
  DrainHook drain_hook_;
  double target_gap_sum_ = 0.0;
  std::function<bool()> stop_predicate_;
  bool started_ = false;

  common::TimeSeries candidate_series_;
  common::TimeSeries power_series_;
  double last_energy_joules_ = 0.0;
  double last_energy_time_ = 0.0;
  PlatformStatus last_status_;
  std::function<void(des::SimTime, const PlatformStatus&, std::size_t)> check_hook_;

  des::PeriodicProcess process_;
};

}  // namespace greensched::green
