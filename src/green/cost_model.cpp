#include "green/cost_model.hpp"

#include "common/error.hpp"

namespace greensched::green {

using common::ConfigError;
using common::Flops;
using common::Joules;
using common::Seconds;
using diet::EstTag;

void ServerCostInputs::validate() const {
  if (flops.value() <= 0.0) throw ConfigError("ServerCostInputs: flops must be positive");
  if (full_load_watts.value() < 0.0 || boot_watts.value() < 0.0)
    throw ConfigError("ServerCostInputs: negative power");
  if (boot_seconds.value() < 0.0 || queue_wait.value() < 0.0)
    throw ConfigError("ServerCostInputs: negative duration");
}

ServerCostInputs ServerCostInputs::from_estimation(const diet::EstimationVector& est) {
  ServerCostInputs in;
  // Prefer learned throughput; fall back to the nameplate figure.
  const double per_core = est.get_or(EstTag::kMeasuredFlopsPerCore,
                                     est.get(EstTag::kSpecFlopsPerCore));
  in.flops = common::FlopsRate(per_core);  // single-core tasks: f_s is per-core rate
  in.full_load_watts = common::Watts(est.get_or(
      EstTag::kMeasuredPowerWatts, est.get(EstTag::kSpecPeakPowerWatts)));
  in.boot_watts = common::Watts(est.get(EstTag::kBootPowerWatts));
  in.boot_seconds = Seconds(est.get(EstTag::kBootSeconds));
  in.queue_wait = Seconds(est.get_or(EstTag::kQueueWaitSeconds, 0.0));
  in.active = est.get_or(EstTag::kNodeOn, 1.0) != 0.0;
  in.validate();
  return in;
}

Seconds computation_time(const ServerCostInputs& server, Flops work) {
  const Seconds compute = work / server.flops;
  if (server.active) return server.queue_wait + compute;
  return server.boot_seconds + compute;
}

Joules energy_consumption(const ServerCostInputs& server, Flops work) {
  const Seconds compute = work / server.flops;
  const Joules compute_energy = server.full_load_watts * compute;
  if (server.active) return compute_energy;
  return server.boot_seconds * server.boot_watts + compute_energy;
}

}  // namespace greensched::green
