#include "green/rules.hpp"

#include "common/error.hpp"

namespace greensched::green {

using common::ConfigError;

void RuleEngine::add_rule(Rule rule) {
  if (rule.name.empty()) throw ConfigError("RuleEngine: rule needs a name");
  if (!rule.applies) throw ConfigError("RuleEngine: rule '" + rule.name + "' has no predicate");
  if (rule.candidate_fraction < 0.0 || rule.candidate_fraction > 1.0)
    throw ConfigError("RuleEngine: rule '" + rule.name + "' fraction outside [0,1]");
  rules_.push_back(std::move(rule));
}

const Rule* RuleEngine::match(const PlatformStatus& status) const {
  for (const auto& rule : rules_) {
    if (rule.applies(status)) return &rule;
  }
  return nullptr;
}

double RuleEngine::evaluate(const PlatformStatus& status) const {
  const Rule* rule = match(status);
  if (rule == nullptr) return default_fraction_;
  if (rule->action) rule->action(status);
  return rule->candidate_fraction;
}

void RuleEngine::set_default_fraction(double fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw ConfigError("RuleEngine: default fraction outside [0,1]");
  default_fraction_ = fraction;
}

RuleEngine RuleEngine::paper_default(double heat_threshold_celsius) {
  RuleEngine engine;
  engine.add_rule(Rule{
      "heat-protection",
      [heat_threshold_celsius](const PlatformStatus& s) {
        return s.temperature > heat_threshold_celsius;
      },
      0.20,
      nullptr,
  });
  engine.add_rule(Rule{
      "regular-tariff",  // 1.0 >= c > 0.8
      [](const PlatformStatus& s) { return s.electricity_cost > 0.8; },
      0.40,
      nullptr,
  });
  engine.add_rule(Rule{
      "off-peak-1",  // 0.8 >= c > 0.5 (c == 0.5 included per the strict
                     // reading: the 100% rule requires c < 0.5)
      [](const PlatformStatus& s) { return s.electricity_cost >= 0.5; },
      0.70,
      nullptr,
  });
  engine.add_rule(Rule{
      "off-peak-2",  // c < 0.5
      [](const PlatformStatus& s) { return s.electricity_cost < 0.5; },
      1.00,
      nullptr,
  });
  return engine;
}

}  // namespace greensched::green
