#include "green/candidate_selection.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace greensched::green {

using common::Watts;

void sort_by_greenperf(std::vector<RankedServer>& servers) {
  std::stable_sort(servers.begin(), servers.end(),
                   [](const RankedServer& a, const RankedServer& b) {
                     return a.greenperf < b.greenperf;
                   });
}

Watts total_power(const std::vector<RankedServer>& servers) noexcept {
  Watts total{0.0};
  for (const auto& s : servers) total += s.power;
  return total;
}

std::vector<RankedServer> select_candidate_servers(std::vector<RankedServer> servers,
                                                   double provider_preference) {
  if (provider_preference < 0.0 || provider_preference > 1.0)
    throw common::ConfigError("select_candidate_servers: preference outside [0,1]");
  for (const auto& s : servers) {
    if (s.power.value() < 0.0)
      throw common::ConfigError("select_candidate_servers: negative power for '" + s.name + "'");
  }

  // Lines 1-5: P_total and P_required.
  const Watts p_total = total_power(servers);
  const double p_required = provider_preference * p_total.value();

  // Line 6-12: greedy accumulation over the GreenPerf-sorted list.
  sort_by_greenperf(servers);
  std::vector<RankedServer> selected;
  double accumulated = 0.0;
  std::size_t next = 0;
  // Tolerate floating-point round-off so preference == 1.0 selects all.
  const double epsilon = 1e-9 * std::max(1.0, p_total.value());
  while (accumulated + epsilon < p_required && next < servers.size()) {
    accumulated += servers[next].power.value();
    selected.push_back(std::move(servers[next]));
    ++next;
  }
  return selected;
}

}  // namespace greensched::green
