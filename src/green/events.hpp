// Energy-related events (Section IV-C).
//
// Two kinds drive the adaptive provisioning experiment: electricity-cost
// changes and temperature excursions.  Events are *scheduled* (the Master
// Agent learns them some time in advance, e.g. tariff changes announced
// by the energy provider) or *unexpected* (visible only once they occur,
// e.g. a heat peak).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/platform.hpp"
#include "des/simulator.hpp"

namespace greensched::green {

enum class EventKind { kElectricityCost, kTemperature };

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

struct EnergyEvent {
  EventKind kind = EventKind::kElectricityCost;
  double at = 0.0;            ///< when the event takes effect (sim seconds)
  double value = 0.0;         ///< new cost in [0,1], or new ambient degC
  double announced_at = 0.0;  ///< when the scheduler can first see it
  std::string description;

  [[nodiscard]] bool scheduled() const noexcept { return announced_at < at; }
};

/// The event timeline: ground truth plus the scheduler's restricted view.
class EventSchedule {
 public:
  /// Adds an event; `announced_at` must be <= `at` and cost values must
  /// lie in [0, 1].
  void add(EnergyEvent event);

  /// Convenience factories.
  static EnergyEvent scheduled_cost_change(double at, double value, double notice,
                                           std::string description = {});
  static EnergyEvent unexpected_temperature(double at, double celsius,
                                            std::string description = {});

  /// Ground-truth electricity cost at time t (initial cost until the
  /// first cost event).
  [[nodiscard]] double cost_at(double t) const noexcept;
  void set_initial_cost(double cost);
  [[nodiscard]] double initial_cost() const noexcept { return initial_cost_; }

  /// The scheduler's forecast: among cost events already announced by
  /// `now` and taking effect within (now, now + horizon], the earliest.
  [[nodiscard]] std::optional<EnergyEvent> next_visible_cost_change(double now,
                                                                    double horizon) const;

  [[nodiscard]] const std::vector<EnergyEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<EnergyEvent> events_;  ///< sorted by `at`
  double initial_cost_ = 1.0;        ///< the paper starts at regular time
};

/// Applies the physical side of events to the platform: temperature
/// events change the thermal ambient at their effect time (cost events
/// have no physical effect — the provisioner reads them from the
/// schedule).
class EventInjector {
 public:
  EventInjector(des::Simulator& sim, cluster::Platform& platform, const EventSchedule& schedule);

  [[nodiscard]] std::size_t injected() const noexcept { return injected_; }

 private:
  std::size_t injected_ = 0;
};

}  // namespace greensched::green
