#include "cluster/node_spec.hpp"

#include "common/error.hpp"

namespace greensched::cluster {

using common::ConfigError;

void NodeSpec::validate() const {
  if (model.empty()) throw ConfigError("NodeSpec: model name must not be empty");
  if (cores == 0) throw ConfigError("NodeSpec '" + model + "': cores must be >= 1");
  if (flops_per_core.value() <= 0.0)
    throw ConfigError("NodeSpec '" + model + "': flops_per_core must be positive");
  if (idle_watts.value() < 0.0 || peak_watts.value() < 0.0 || off_watts.value() < 0.0 ||
      boot_watts.value() < 0.0 || active_watts.value() < 0.0)
    throw ConfigError("NodeSpec '" + model + "': power figures must be non-negative");
  if (peak_watts < idle_watts)
    throw ConfigError("NodeSpec '" + model + "': peak power below idle power");
  if (active_watts < idle_watts || active_watts > peak_watts)
    throw ConfigError("NodeSpec '" + model + "': active power outside [idle, peak]");
  if (off_watts > idle_watts)
    throw ConfigError("NodeSpec '" + model + "': off power above idle power");
  if (boot_seconds.value() < 0.0 || shutdown_seconds.value() < 0.0)
    throw ConfigError("NodeSpec '" + model + "': transition times must be non-negative");
}

NodeSpec NodeSpec::perturbed(double power_factor, double speed_factor) const {
  if (power_factor <= 0.0 || speed_factor <= 0.0)
    throw ConfigError("NodeSpec::perturbed: factors must be positive");
  NodeSpec out = *this;
  out.idle_watts *= power_factor;
  out.active_watts *= power_factor;
  out.peak_watts *= power_factor;
  out.off_watts *= power_factor;
  out.boot_watts *= power_factor;
  out.flops_per_core *= speed_factor;
  return out;
}

}  // namespace greensched::cluster
