// Platform: a set of clusters of heterogeneous nodes — the simulated
// GRID'5000 slice the experiments run on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"

namespace greensched::cluster {

struct ClusterInfo {
  common::ClusterId id;
  std::string name;
  NodeSpec base_spec;
  std::vector<std::size_t> node_indices;  ///< indices into Platform::nodes()
};

/// Per-cluster construction options.
struct ClusterOptions {
  std::size_t node_count = 1;
  /// Relative standard deviation applied per node to power figures
  /// ("your cluster is not power homogeneous", Diouri et al. [15]).
  double power_heterogeneity = 0.0;
  /// Relative standard deviation applied per node to compute speed.
  double speed_heterogeneity = 0.0;
  bool initially_on = true;
  ThermalConfig thermal{};
};

/// One run's machines.  Owned by a single experiment run (see
/// docs/ARCHITECTURE.md, "Concurrency model"): per-node heterogeneity
/// draws come from the run's RNG passed into add_cluster, nothing is
/// shared between Platform instances, so concurrent runs never interact.
class Platform {
 public:
  Platform() = default;
  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Adds `options.node_count` nodes of the given spec as a named cluster;
  /// node names are "<cluster>-<i>".  Returns the cluster id.
  common::ClusterId add_cluster(const std::string& name, const NodeSpec& spec,
                                const ClusterOptions& options, common::Rng& rng);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] const Node& node(std::size_t i) const { return *nodes_.at(i); }
  [[nodiscard]] Node* find_node(common::NodeId id) noexcept;
  [[nodiscard]] Node* find_node_by_name(const std::string& name) noexcept;

  [[nodiscard]] std::size_t cluster_count() const noexcept { return clusters_.size(); }
  [[nodiscard]] const ClusterInfo& cluster(std::size_t i) const { return clusters_.at(i); }
  [[nodiscard]] const ClusterInfo* find_cluster(const std::string& name) const noexcept;

  /// Sum of instantaneous power over all nodes at `now`.
  [[nodiscard]] Watts total_power(Seconds now);
  /// Sum of energy integrals over all nodes at `now`.
  [[nodiscard]] Joules total_energy(Seconds now);
  /// Energy of one cluster's nodes at `now`.
  [[nodiscard]] Joules cluster_energy(common::ClusterId id, Seconds now);
  /// Total core count across all nodes.
  [[nodiscard]] unsigned total_cores() const noexcept;

  /// Injects a new thermal ambient on every node (heat events).
  void set_ambient(Celsius ambient) noexcept;

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<ClusterInfo> clusters_;
  common::IdAllocator<common::NodeId> node_ids_;
  common::IdAllocator<common::ClusterId> cluster_ids_;
};

}  // namespace greensched::cluster
