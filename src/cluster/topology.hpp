// Rack topology and thermal coupling.
//
// The paper's future work is "fine-grained scheduling by taking into
// account spatial information", and its related work notes that node
// power varies with "temperature and node location in a rack"
// (Section II-B).  This module provides the spatial substrate: machines
// are placed into rack slots, and a periodic coupler raises each node's
// thermal ambient according to the heat its rack neighbours dissipate —
// so a loaded rack becomes hot and spatially-aware policies can react.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cluster/platform.hpp"
#include "des/simulator.hpp"

namespace greensched::cluster {

struct RackPosition {
  unsigned rack = 0;
  unsigned slot = 0;
  auto operator<=>(const RackPosition&) const = default;
};

class RackTopology {
 public:
  RackTopology(unsigned racks, unsigned slots_per_rack);

  [[nodiscard]] unsigned racks() const noexcept { return racks_; }
  [[nodiscard]] unsigned slots_per_rack() const noexcept { return slots_per_rack_; }

  /// Places a node; throws ConfigError if the position is out of range or
  /// occupied, or the node is already placed.
  void place(common::NodeId node, RackPosition position);
  /// Places every platform node round-robin across racks, filling slots
  /// bottom-up (a sensible default layout).
  void place_all(const Platform& platform);

  [[nodiscard]] std::optional<RackPosition> position(common::NodeId node) const;
  [[nodiscard]] std::optional<common::NodeId> occupant(RackPosition position) const;
  /// All nodes in the same rack (excluding the node itself).
  [[nodiscard]] std::vector<common::NodeId> rack_mates(common::NodeId node) const;
  /// Nodes in adjacent slots of the same rack (the strongest coupling).
  [[nodiscard]] std::vector<common::NodeId> slot_neighbours(common::NodeId node) const;
  [[nodiscard]] std::vector<common::NodeId> nodes_in_rack(unsigned rack) const;
  [[nodiscard]] std::size_t placed() const noexcept { return by_node_.size(); }

 private:
  unsigned racks_;
  unsigned slots_per_rack_;
  std::map<common::NodeId, RackPosition> by_node_;
  std::map<RackPosition, common::NodeId> by_position_;
};

/// Periodically recomputes each node's thermal ambient from the room
/// temperature plus contributions of its rack (weak) and slot-adjacent
/// (strong) neighbours.
struct ThermalCouplingConfig {
  common::Celsius room{20.0};
  double rack_coeff = 0.002;       ///< degC per W from same-rack machines
  double neighbour_coeff = 0.008;  ///< degC per W from slot-adjacent ones
  des::SimDuration update_period{30.0};
};

class ThermalCoupler {
 public:
  ThermalCoupler(des::Simulator& sim, Platform& platform, RackTopology topology,
                 ThermalCouplingConfig config = {});

  void start() { process_.start_at(sim_.now()); }
  void stop() noexcept { process_.stop(); }

  /// The ambient the coupler would assign to `node` right now.
  [[nodiscard]] common::Celsius ambient_for(common::NodeId node, common::Seconds now);
  /// Mean ambient over a rack's occupants (hot-rack detection).
  [[nodiscard]] common::Celsius rack_ambient(unsigned rack, common::Seconds now);

  /// Room temperature can be changed at runtime (heat events compose).
  void set_room(common::Celsius room) noexcept { config_.room = room; }
  [[nodiscard]] const RackTopology& topology() const noexcept { return topology_; }
  [[nodiscard]] std::uint64_t updates() const noexcept { return process_.ticks(); }

 private:
  bool tick(des::SimTime at);

  des::Simulator& sim_;
  Platform& platform_;
  RackTopology topology_;
  ThermalCouplingConfig config_;
  des::PeriodicProcess process_;
};

}  // namespace greensched::cluster
