// Ondemand-style DVFS governor.
//
// Event-driven: it subscribes to each node's load-change hook and
// switches to the fastest P-state the moment any core goes busy, back to
// the slowest when the node idles — the classic race-to-idle policy.
// Exists so the shutdown-vs-DVFS comparison of the paper's premise can
// be run (bench_ablation_dvfs_vs_shutdown).
#pragma once

#include <cstdint>

#include "cluster/platform.hpp"

namespace greensched::cluster {

class OndemandGovernor {
 public:
  /// Installs `ladder` and the load hook on every node of the platform.
  /// Nodes start at the slowest state (they are idle).
  OndemandGovernor(Platform& platform, DvfsLadder ladder, common::Seconds now);

  [[nodiscard]] std::uint64_t transitions() const noexcept { return transitions_; }

 private:
  void on_load_change(Node& node, common::Seconds now);

  std::uint64_t transitions_ = 0;
};

}  // namespace greensched::cluster
