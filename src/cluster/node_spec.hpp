// Static description of a machine type.
//
// These are the per-server quantities the paper's scheduler assumes known
// (Section III-C): FLOPS f_s, full-load power c_s, boot power bc_s, boot
// time bt_s — plus idle power, core count and shutdown time needed to run
// the platform model.
#pragma once

#include <string>

#include "common/units.hpp"

namespace greensched::cluster {

using common::Celsius;
using common::FlopsRate;
using common::Seconds;
using common::Watts;

struct NodeSpec {
  std::string model;          ///< machine type name, e.g. "taurus"
  unsigned cores = 1;         ///< one task occupies one core (paper's setup)
  FlopsRate flops_per_core{0.0};
  Watts idle_watts{0.0};      ///< powered on, no task running
  /// Draw the moment at least one core is busy (the "active floor"):
  /// real servers leave their deep package idle states as soon as any
  /// core works, so power jumps well above idle before scaling with
  /// load.  idle <= active <= peak.
  Watts active_watts{0.0};
  Watts peak_watts{0.0};      ///< all cores busy (the paper's c_s)
  Watts off_watts{0.0};       ///< residual draw when powered off
  Watts boot_watts{0.0};      ///< draw during the boot sequence (bc_s)
  Seconds boot_seconds{0.0};  ///< bt_s
  Seconds shutdown_seconds{0.0};

  /// Aggregate peak compute speed (all cores).
  [[nodiscard]] FlopsRate total_flops() const noexcept {
    return FlopsRate(flops_per_core.value() * cores);
  }

  /// Throws ConfigError when a field is inconsistent (peak < idle, no
  /// cores, non-positive speed, negative times...).
  void validate() const;

  /// The paper's nodes are "not power homogeneous": returns a copy whose
  /// electrical figures are scaled by `power_factor` and compute speed by
  /// `speed_factor` (both must be positive).
  [[nodiscard]] NodeSpec perturbed(double power_factor, double speed_factor) const;
};

}  // namespace greensched::cluster
