#include "cluster/topology.hpp"

#include "common/error.hpp"

namespace greensched::cluster {

using common::Celsius;
using common::ConfigError;
using common::NodeId;
using common::Seconds;

RackTopology::RackTopology(unsigned racks, unsigned slots_per_rack)
    : racks_(racks), slots_per_rack_(slots_per_rack) {
  if (racks_ == 0 || slots_per_rack_ == 0)
    throw ConfigError("RackTopology: need at least one rack and one slot");
}

void RackTopology::place(NodeId node, RackPosition position) {
  if (!node.valid()) throw ConfigError("RackTopology: invalid node id");
  if (position.rack >= racks_ || position.slot >= slots_per_rack_)
    throw ConfigError("RackTopology: position out of range");
  if (by_node_.contains(node)) throw ConfigError("RackTopology: node already placed");
  if (by_position_.contains(position)) throw ConfigError("RackTopology: slot occupied");
  by_node_[node] = position;
  by_position_[position] = node;
}

void RackTopology::place_all(const Platform& platform) {
  if (platform.node_count() > static_cast<std::size_t>(racks_) * slots_per_rack_)
    throw ConfigError("RackTopology: not enough slots for the platform");
  unsigned rack = 0;
  std::vector<unsigned> next_slot(racks_, 0);
  for (std::size_t i = 0; i < platform.node_count(); ++i) {
    place(platform.node(i).id(), RackPosition{rack, next_slot[rack]});
    ++next_slot[rack];
    rack = (rack + 1) % racks_;
  }
}

std::optional<RackPosition> RackTopology::position(NodeId node) const {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> RackTopology::occupant(RackPosition position) const {
  auto it = by_position_.find(position);
  if (it == by_position_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> RackTopology::rack_mates(NodeId node) const {
  std::vector<NodeId> out;
  const auto pos = position(node);
  if (!pos) return out;
  for (const auto& [p, n] : by_position_) {
    if (p.rack == pos->rack && n != node) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> RackTopology::slot_neighbours(NodeId node) const {
  std::vector<NodeId> out;
  const auto pos = position(node);
  if (!pos) return out;
  if (pos->slot > 0) {
    if (auto n = occupant(RackPosition{pos->rack, pos->slot - 1})) out.push_back(*n);
  }
  if (auto n = occupant(RackPosition{pos->rack, pos->slot + 1})) out.push_back(*n);
  return out;
}

std::vector<NodeId> RackTopology::nodes_in_rack(unsigned rack) const {
  std::vector<NodeId> out;
  for (const auto& [p, n] : by_position_) {
    if (p.rack == rack) out.push_back(n);
  }
  return out;
}

ThermalCoupler::ThermalCoupler(des::Simulator& sim, Platform& platform, RackTopology topology,
                               ThermalCouplingConfig config)
    : sim_(sim),
      platform_(platform),
      topology_(std::move(topology)),
      config_(config),
      process_(sim, config.update_period, [this](des::SimTime at) { return tick(at); }) {
  if (config_.rack_coeff < 0.0 || config_.neighbour_coeff < 0.0)
    throw ConfigError("ThermalCoupler: coupling coefficients must be non-negative");
}

Celsius ThermalCoupler::ambient_for(NodeId node, Seconds now) {
  double ambient = config_.room.value();
  for (NodeId mate : topology_.rack_mates(node)) {
    if (cluster::Node* n = platform_.find_node(mate)) {
      ambient += config_.rack_coeff * n->power(now).value();
    }
  }
  for (NodeId neighbour : topology_.slot_neighbours(node)) {
    if (cluster::Node* n = platform_.find_node(neighbour)) {
      ambient += config_.neighbour_coeff * n->power(now).value();
    }
  }
  return Celsius(ambient);
}

Celsius ThermalCoupler::rack_ambient(unsigned rack, Seconds now) {
  const auto nodes = topology_.nodes_in_rack(rack);
  if (nodes.empty()) return config_.room;
  double sum = 0.0;
  for (NodeId id : nodes) sum += ambient_for(id, now).value();
  return Celsius(sum / static_cast<double>(nodes.size()));
}

bool ThermalCoupler::tick(des::SimTime at) {
  for (std::size_t i = 0; i < platform_.node_count(); ++i) {
    cluster::Node& node = platform_.node(i);
    if (topology_.position(node.id())) {
      node.set_ambient(ambient_for(node.id(), at));
    }
  }
  return true;
}

}  // namespace greensched::cluster
