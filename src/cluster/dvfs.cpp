#include "cluster/dvfs.hpp"

#include "common/error.hpp"

namespace greensched::cluster {

using common::ConfigError;

DvfsLadder::DvfsLadder() : states_{PState{"P0", 1.0, 1.0, 1.0}} {}

DvfsLadder::DvfsLadder(std::vector<PState> states) : states_(std::move(states)) {
  if (states_.empty()) throw ConfigError("DvfsLadder: need at least one P-state");
  double previous_speed = 1.0 + 1e-12;
  for (const auto& s : states_) {
    if (s.speed_factor <= 0.0 || s.speed_factor > 1.0)
      throw ConfigError("DvfsLadder: speed factor of '" + s.name + "' outside (0, 1]");
    if (s.power_factor <= 0.0 || s.power_factor > 1.0)
      throw ConfigError("DvfsLadder: power factor of '" + s.name + "' outside (0, 1]");
    if (s.static_factor <= 0.0 || s.static_factor > 1.0)
      throw ConfigError("DvfsLadder: static factor of '" + s.name + "' outside (0, 1]");
    if (s.speed_factor > previous_speed)
      throw ConfigError("DvfsLadder: states must be ordered fastest first");
    previous_speed = s.speed_factor;
  }
}

const PState& DvfsLadder::state(std::size_t index) const {
  if (index >= states_.size()) throw ConfigError("DvfsLadder: P-state index out of range");
  return states_[index];
}

DvfsLadder DvfsLadder::typical_xeon() {
  // Dynamic power ~ f * V^2 with voltage scaling mildly with frequency;
  // static power dominated by leakage and the platform (PSU, fans, RAM),
  // so it barely reacts to core frequency.
  return DvfsLadder({
      PState{"P0", 1.0, 1.00, 1.00},
      PState{"P1", 0.8, 0.70, 0.97},
      PState{"P2", 0.6, 0.48, 0.95},
      PState{"P3", 0.4, 0.32, 0.93},
  });
}

}  // namespace greensched::cluster
