// Wattmeter: the energy-sensing substrate.
//
// GRID'5000's Lyon site instruments nodes with external Omegawatt meters
// that report one power sample per second; the paper averages "more than
// 6,000 measurements" to estimate a node's consumption.  This class
// reproduces that data path: a periodic DES process samples the node's
// instantaneous power (optionally with measurement noise), keeps a sliding
// window of samples, and exposes window averages and an energy estimate.
// The middleware reads *these measurements*, never the node model
// directly, preserving the paper's dynamic (measurement-driven) method.
#pragma once

#include <memory>
#include <optional>

#include "cluster/node.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "des/simulator.hpp"

namespace greensched::cluster {

struct WattmeterConfig {
  des::SimDuration sample_period{1.0};  ///< Omegawatt: 1 sample/second
  std::size_t window_samples = 6000;    ///< the paper's averaging window
  double noise_stddev_watts = 0.0;      ///< gaussian measurement noise
  bool keep_full_series = false;        ///< record every sample (figures)
};

class Wattmeter {
 public:
  /// Attaches to `node` and starts sampling immediately.  `rng` is only
  /// needed when noise is configured.
  Wattmeter(des::Simulator& sim, Node& node, WattmeterConfig config = {},
            common::Rng* rng = nullptr);

  /// Mean of the retained sample window; nullopt before the first sample.
  [[nodiscard]] std::optional<Watts> average_power() const;
  /// Most recent sample.
  [[nodiscard]] std::optional<Watts> last_sample() const;
  /// Number of samples currently in the window.
  [[nodiscard]] std::size_t samples_in_window() const noexcept { return window_.size(); }
  [[nodiscard]] std::uint64_t total_samples() const noexcept { return total_samples_; }

  /// Riemann estimate of energy since attach: sum(sample) * period.  The
  /// exact value lives in Node::energy(); tests compare the two.
  [[nodiscard]] Joules measured_energy() const noexcept;

  /// Full sample record; empty unless keep_full_series was set.
  [[nodiscard]] const common::TimeSeries& series() const noexcept { return series_; }

  [[nodiscard]] const Node& node() const noexcept { return node_; }
  [[nodiscard]] const WattmeterConfig& config() const noexcept { return config_; }

  void stop() noexcept { process_.stop(); }
  [[nodiscard]] bool running() const noexcept { return process_.running(); }

 private:
  bool sample(des::SimTime at);
  /// Validates before any member depends on the values (the ring buffer
  /// and periodic process would otherwise throw their own error types).
  static WattmeterConfig checked(WattmeterConfig config, const common::Rng* rng);

  Node& node_;
  WattmeterConfig config_;
  common::Rng* rng_;
  common::RingBuffer<double> window_;
  common::TimeSeries series_;
  double sample_sum_ = 0.0;  ///< running sum of the *window* contents
  double energy_accumulator_ = 0.0;
  std::uint64_t total_samples_ = 0;
  des::PeriodicProcess process_;
};

}  // namespace greensched::cluster
