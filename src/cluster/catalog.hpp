// Machine catalog: the concrete machine types used in the paper's
// evaluation (Table I clusters from GRID'5000 plus the Table III simulated
// clusters), calibrated from the public GRID'5000 hardware and power
// documentation.  Absolute wattages need not match the authors' testbed;
// what matters is the ordering they create:
//   - Taurus  : best power/performance ratio (wins under POWER),
//   - Orion   : highest raw FLOPS (wins under PERFORMANCE),
//   - Sagittaire: old, slow, power-hungry (loses under both).
#pragma once

#include <string>
#include <vector>

#include "cluster/node_spec.hpp"

namespace greensched::cluster {

class MachineCatalog {
 public:
  /// Dell R720 + GPU (Lyon): fastest machine of the testbed.
  static NodeSpec orion();
  /// Dell R720 (Lyon): same CPU as Orion, lower electrical footprint —
  /// the most energy-efficient machine.
  static NodeSpec taurus();
  /// Sun Fire V20z (Lyon, 2005): two single-core Opterons, high idle draw.
  static NodeSpec sagittaire();
  /// Simulated cluster of Table III: idle 190 W, peak 230 W.
  static NodeSpec sim1();
  /// Simulated cluster of Table III: idle 160 W, peak 190 W.
  static NodeSpec sim2();

  /// Lookup by model name ("orion", "taurus", "sagittaire", "sim1",
  /// "sim2"); throws ConfigError for unknown names.
  static NodeSpec by_name(const std::string& name);
  /// All model names known to the catalog.
  static std::vector<std::string> names();
};

}  // namespace greensched::cluster
