#include "cluster/node.hpp"

#include <cmath>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace greensched::cluster {

using common::StateError;

const char* to_string(NodeState state) noexcept {
  switch (state) {
    case NodeState::kOff: return "off";
    case NodeState::kBooting: return "booting";
    case NodeState::kOn: return "on";
    case NodeState::kShuttingDown: return "shutting-down";
    case NodeState::kFailed: return "failed";
  }
  return "?";
}

Node::Node(NodeId id, std::string name, NodeSpec spec, common::ClusterId cluster,
           ThermalConfig thermal, bool initially_on)
    : id_(id),
      name_(std::move(name)),
      spec_(std::move(spec)),
      nameplate_(spec_),
      cluster_(cluster),
      thermal_(thermal),
      state_(initially_on ? NodeState::kOn : NodeState::kOff),
      temperature_(thermal.ambient) {
  spec_.validate();
  if (thermal_.tau.value() <= 0.0) throw common::ConfigError("Node: thermal tau must be positive");
}

Watts Node::instantaneous_power() const noexcept {
  switch (state_) {
    case NodeState::kOff:
    case NodeState::kFailed:  // crashed: only residual draw remains
      return spec_.off_watts;
    case NodeState::kBooting:
      return spec_.boot_watts;
    case NodeState::kShuttingDown:
      return spec_.idle_watts;
    case NodeState::kOn: {
      const cluster::PState& p = ladder_.state(pstate_);
      const double static_watts = spec_.idle_watts.value() * p.static_factor;
      if (busy_cores_ == 0) return Watts(static_watts);
      // Active floor plus a linear term: any busy core wakes the package
      // to active_watts; additional cores scale toward peak_watts.  DVFS
      // scales the dynamic share only — the static floor barely moves.
      const double load = static_cast<double>(busy_cores_) / static_cast<double>(spec_.cores);
      const double full_speed = spec_.active_watts.value() +
                                (spec_.peak_watts.value() - spec_.active_watts.value()) * load;
      const double dynamic_watts = (full_speed - spec_.idle_watts.value()) * p.power_factor;
      return Watts(static_watts + dynamic_watts);
    }
  }
  return Watts(0.0);
}

void Node::advance_to(Seconds now) {
  if (now < last_update_) throw StateError("Node '" + name_ + "': time went backwards");
  const Seconds dt = now - last_update_;
  if (dt.value() == 0.0) return;

  const Watts p = instantaneous_power();
  energy_ += p * dt;
  if (state_ == NodeState::kOn && busy_cores_ > 0) {
    active_energy_ += p * dt;
    active_time_ += dt;
  }

  // First-order thermal response toward the load-dependent steady state.
  const double target = thermal_.ambient.value() + thermal_.rise_per_watt * p.value();
  const double alpha = 1.0 - std::exp(-dt.value() / thermal_.tau.value());
  temperature_ = Celsius(temperature_.value() + (target - temperature_.value()) * alpha);

  last_update_ = now;
}

void Node::power_on(Seconds now) {
  advance_to(now);
  if (state_ != NodeState::kOff)
    throw StateError("Node '" + name_ + "': power_on from state " + to_string(state_));
  ++boots_;
  enter_state(NodeState::kBooting, now);
  GS_TCOUNT(node_boots);
  telemetry::Telemetry::instant("node.power_on", "power", now.value(), id_.value(), name_);
}

void Node::complete_boot(Seconds now) {
  advance_to(now);
  if (state_ != NodeState::kBooting)
    throw StateError("Node '" + name_ + "': complete_boot from state " + to_string(state_));
  const double boot_began = state_since_.value();
  enter_state(NodeState::kOn, now);
  telemetry::Telemetry::span("node.boot", "power", boot_began, now.value(), id_.value(),
                             name_);
}

void Node::power_off(Seconds now) {
  advance_to(now);
  if (state_ != NodeState::kOn)
    throw StateError("Node '" + name_ + "': power_off from state " + to_string(state_));
  if (busy_cores_ != 0)
    throw StateError("Node '" + name_ + "': power_off while " + std::to_string(busy_cores_) +
                     " cores are busy");
  enter_state(NodeState::kShuttingDown, now);
  GS_TCOUNT(node_shutdowns);
  telemetry::Telemetry::instant("node.power_off", "power", now.value(), id_.value(), name_);
}

void Node::complete_shutdown(Seconds now) {
  advance_to(now);
  if (state_ != NodeState::kShuttingDown)
    throw StateError("Node '" + name_ + "': complete_shutdown from state " + to_string(state_));
  const double shutdown_began = state_since_.value();
  enter_state(NodeState::kOff, now);
  telemetry::Telemetry::span("node.shutdown", "power", shutdown_began, now.value(),
                             id_.value(), name_);
}

void Node::fail(Seconds now) {
  advance_to(now);
  if (state_ == NodeState::kOff || state_ == NodeState::kFailed)
    throw StateError("Node '" + name_ + "': fail from state " + to_string(state_));
  busy_cores_ = 0;  // whatever ran here is gone
  ++failures_;
  enter_state(NodeState::kFailed, now);
  GS_TCOUNT(node_failures);
  telemetry::Telemetry::instant("node.fail", "power", now.value(), id_.value(), name_);
}

void Node::repair(Seconds now) {
  advance_to(now);
  if (state_ != NodeState::kFailed)
    throw StateError("Node '" + name_ + "': repair from state " + to_string(state_));
  enter_state(NodeState::kOff, now);
  GS_TCOUNT(node_repairs);
  telemetry::Telemetry::instant("node.repair", "power", now.value(), id_.value(), name_);
}

void Node::enter_state(NodeState to, Seconds now) {
  const NodeState from = state_;
  state_ = to;
  state_since_ = now;
  ++change_stamp_;
  if (state_change_hook_) state_change_hook_(*this, from, to, now);
}

void Node::acquire_core(Seconds now) {
  advance_to(now);
  if (state_ != NodeState::kOn)
    throw StateError("Node '" + name_ + "': acquire_core while " + to_string(state_));
  if (busy_cores_ >= spec_.cores)
    throw StateError("Node '" + name_ + "': no free core");
  ++busy_cores_;
  ++tasks_started_;
  ++change_stamp_;
  if (load_change_hook_) load_change_hook_(*this, now);
}

void Node::release_core(Seconds now) {
  advance_to(now);
  if (busy_cores_ == 0) throw StateError("Node '" + name_ + "': release_core with none busy");
  --busy_cores_;
  ++tasks_completed_;
  ++change_stamp_;
  if (load_change_hook_) load_change_hook_(*this, now);
}

void Node::set_nameplate(NodeSpec nameplate) {
  nameplate.validate();
  nameplate_ = std::move(nameplate);
  ++change_stamp_;
}

void Node::set_dvfs_ladder(DvfsLadder ladder) {
  ladder_ = std::move(ladder);
  pstate_ = 0;
  ++change_stamp_;
}

void Node::set_pstate(Seconds now, std::size_t index) {
  if (index >= ladder_.size())
    throw StateError("Node '" + name_ + "': P-state index out of range");
  if (index == pstate_) return;
  advance_to(now);  // integrate energy at the old operating point
  pstate_ = index;
  ++pstate_transitions_;
  ++change_stamp_;
  GS_TCOUNT(pstate_transitions);
}

common::FlopsRate Node::current_flops_per_core() const noexcept {
  return common::FlopsRate(spec_.flops_per_core.value() * ladder_.state(pstate_).speed_factor);
}

Watts Node::power(Seconds now) {
  advance_to(now);
  return instantaneous_power();
}

Joules Node::energy(Seconds now) {
  advance_to(now);
  return energy_;
}

Joules Node::active_energy(Seconds now) {
  advance_to(now);
  return active_energy_;
}

Seconds Node::active_time(Seconds now) {
  advance_to(now);
  return active_time_;
}

Celsius Node::temperature(Seconds now) {
  advance_to(now);
  return temperature_;
}

}  // namespace greensched::cluster
