// DVFS: dynamic voltage and frequency scaling support.
//
// The paper's related work (Snowdon et al., Le Sueur & Heiser) argues
// that slowing components during light load "is becoming less attractive
// on modern hardware" compared to powering servers off — the premise the
// green provisioner is built on.  This module provides the P-state model
// and an ondemand-style governor so the claim can be tested
// quantitatively (see bench_ablation_dvfs_vs_shutdown).
//
// Model: a P-state scales compute speed by `speed_factor` and the
// *dynamic* part of the power curve by `power_factor`; static draw (the
// idle floor's share) scales only by `static_factor`, which is why DVFS
// savings plateau — static power does not follow frequency.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace greensched::cluster {

struct PState {
  std::string name;           ///< e.g. "P0", "P2"
  double speed_factor = 1.0;  ///< effective FLOPS multiplier (0 < f <= 1)
  double power_factor = 1.0;  ///< dynamic-power multiplier (0 < f <= 1)
  double static_factor = 1.0; ///< idle/static-power multiplier
};

/// An ordered ladder of P-states, fastest (P0) first.
class DvfsLadder {
 public:
  /// A single full-speed state (DVFS effectively disabled).
  DvfsLadder();
  explicit DvfsLadder(std::vector<PState> states);

  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] const PState& state(std::size_t index) const;
  [[nodiscard]] std::size_t fastest() const noexcept { return 0; }
  [[nodiscard]] std::size_t slowest() const noexcept { return states_.size() - 1; }

  /// A ladder resembling a 2012-era Xeon: frequency scales 100/80/60/40%,
  /// dynamic power roughly with f*V^2, static power barely moves —
  /// Le Sueur & Heiser's "laws of diminishing returns".
  static DvfsLadder typical_xeon();

 private:
  std::vector<PState> states_;
};

}  // namespace greensched::cluster
