#include "cluster/catalog.hpp"

#include "common/error.hpp"

namespace greensched::cluster {

using common::ConfigError;
using common::gflops_per_sec;
using common::seconds;
using common::watts;

// Calibration notes
// -----------------
// Absolute wattages are calibrated from public GRID'5000 Lyon power data
// rather than the authors' (unpublished) measurements; what the
// experiments depend on is the *ordering* and rough ratios:
//   - taurus  : best power/performance (GreenPerf ~2.0 W/GFLOP/s),
//   - orion   : fastest CPU but pays an accelerator tax — its Tesla GPU
//               idles inside the chassis, raising both idle and loaded
//               draw (GreenPerf ~2.7),
//   - sagittaire: 2005-era Sun Fire V20z — slow and power-hungry
//               (GreenPerf ~30).
// The "active" figure is the package draw once any core works (deep idle
// states left); it is what makes placement decisions energetically
// meaningful: a node that computes anything at all pays its active floor.

NodeSpec MachineCatalog::orion() {
  NodeSpec spec;
  spec.model = "orion";
  spec.cores = 12;  // 2 x 6-core E5-2630 @ 2.30 GHz (Table I)
  spec.flops_per_core = gflops_per_sec(9.8);
  spec.idle_watts = watts(140.0);
  spec.active_watts = watts(320.0);
  spec.peak_watts = watts(400.0);
  spec.off_watts = watts(8.0);
  spec.boot_watts = watts(200.0);
  spec.boot_seconds = seconds(150.0);
  spec.shutdown_seconds = seconds(20.0);
  spec.validate();
  return spec;
}

NodeSpec MachineCatalog::taurus() {
  NodeSpec spec;
  spec.model = "taurus";
  spec.cores = 12;  // 2 x 6-core E5-2630 @ 2.30 GHz (Table I)
  spec.flops_per_core = gflops_per_sec(9.2);
  spec.idle_watts = watts(95.0);
  spec.active_watts = watts(190.0);
  spec.peak_watts = watts(220.0);
  spec.off_watts = watts(6.0);
  spec.boot_watts = watts(150.0);
  spec.boot_seconds = seconds(150.0);
  spec.shutdown_seconds = seconds(20.0);
  spec.validate();
  return spec;
}

NodeSpec MachineCatalog::sagittaire() {
  NodeSpec spec;
  spec.model = "sagittaire";
  spec.cores = 2;  // 2 x single-core Opteron 250 @ 2.40 GHz (Table I)
  spec.flops_per_core = gflops_per_sec(4.0);
  spec.idle_watts = watts(200.0);
  spec.active_watts = watts(225.0);
  spec.peak_watts = watts(240.0);
  spec.off_watts = watts(10.0);
  spec.boot_watts = watts(210.0);
  spec.boot_seconds = seconds(180.0);
  spec.shutdown_seconds = seconds(30.0);
  spec.validate();
  return spec;
}

NodeSpec MachineCatalog::sim1() {
  NodeSpec spec;
  spec.model = "sim1";
  spec.cores = 8;
  spec.flops_per_core = gflops_per_sec(7.0);
  spec.idle_watts = watts(190.0);  // Table III
  spec.active_watts = watts(205.0);
  spec.peak_watts = watts(230.0);  // Table III
  spec.off_watts = watts(8.0);
  spec.boot_watts = watts(200.0);
  spec.boot_seconds = seconds(120.0);
  spec.shutdown_seconds = seconds(20.0);
  spec.validate();
  return spec;
}

NodeSpec MachineCatalog::sim2() {
  NodeSpec spec;
  spec.model = "sim2";
  spec.cores = 8;
  spec.flops_per_core = gflops_per_sec(6.0);
  spec.idle_watts = watts(160.0);  // Table III
  spec.active_watts = watts(172.0);
  spec.peak_watts = watts(190.0);  // Table III
  spec.off_watts = watts(8.0);
  spec.boot_watts = watts(170.0);
  spec.boot_seconds = seconds(120.0);
  spec.shutdown_seconds = seconds(20.0);
  spec.validate();
  return spec;
}

NodeSpec MachineCatalog::by_name(const std::string& name) {
  if (name == "orion") return orion();
  if (name == "taurus") return taurus();
  if (name == "sagittaire") return sagittaire();
  if (name == "sim1") return sim1();
  if (name == "sim2") return sim2();
  throw ConfigError("MachineCatalog: unknown machine '" + name + "'");
}

std::vector<std::string> MachineCatalog::names() {
  return {"orion", "taurus", "sagittaire", "sim1", "sim2"};
}

}  // namespace greensched::cluster
