#include "cluster/wattmeter.hpp"

#include "common/error.hpp"

namespace greensched::cluster {

WattmeterConfig Wattmeter::checked(WattmeterConfig config, const common::Rng* rng) {
  if (config.sample_period.value() <= 0.0)
    throw common::ConfigError("Wattmeter: sample period must be positive");
  if (config.window_samples == 0)
    throw common::ConfigError("Wattmeter: window must hold at least one sample");
  if (config.noise_stddev_watts < 0.0)
    throw common::ConfigError("Wattmeter: negative noise level");
  if (config.noise_stddev_watts > 0.0 && rng == nullptr)
    throw common::ConfigError("Wattmeter: noise requires an Rng");
  return config;
}

Wattmeter::Wattmeter(des::Simulator& sim, Node& node, WattmeterConfig config, common::Rng* rng)
    : node_(node),
      config_(checked(config, rng)),
      rng_(rng),
      window_(config_.window_samples),
      process_(sim, config_.sample_period, [this](des::SimTime at) { return sample(at); }) {
  process_.start();
}

bool Wattmeter::sample(des::SimTime at) {
  double value = node_.power(at).value();
  if (config_.noise_stddev_watts > 0.0) {
    value += rng_->normal(0.0, config_.noise_stddev_watts);
    if (value < 0.0) value = 0.0;  // a wattmeter never reports negative power
  }
  if (window_.full()) sample_sum_ -= window_.oldest();
  window_.push(value);
  sample_sum_ += value;
  energy_accumulator_ += value * config_.sample_period.value();
  ++total_samples_;
  if (config_.keep_full_series) series_.add(at.value(), value);
  return true;  // keep sampling
}

std::optional<Watts> Wattmeter::average_power() const {
  if (window_.empty()) return std::nullopt;
  return Watts(sample_sum_ / static_cast<double>(window_.size()));
}

std::optional<Watts> Wattmeter::last_sample() const {
  if (window_.empty()) return std::nullopt;
  return Watts(window_.newest());
}

Joules Wattmeter::measured_energy() const noexcept { return Joules(energy_accumulator_); }

}  // namespace greensched::cluster
