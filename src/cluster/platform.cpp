#include "cluster/platform.hpp"

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace greensched::cluster {

using common::clamp;
using common::ConfigError;

common::ClusterId Platform::add_cluster(const std::string& name, const NodeSpec& spec,
                                        const ClusterOptions& options, common::Rng& rng) {
  if (options.node_count == 0) throw ConfigError("Platform: cluster needs at least one node");
  if (find_cluster(name) != nullptr)
    throw ConfigError("Platform: duplicate cluster name '" + name + "'");
  spec.validate();

  ClusterInfo info;
  info.id = cluster_ids_.next();
  info.name = name;
  info.base_spec = spec;

  for (std::size_t i = 0; i < options.node_count; ++i) {
    // Heterogeneity factors are clamped to +/- 3 sigma so no node ends up
    // with a nonsensical (negative or wildly off) figure.
    double pf = 1.0, sf = 1.0;
    if (options.power_heterogeneity > 0.0) {
      pf = clamp(rng.normal(1.0, options.power_heterogeneity),
                 1.0 - 3.0 * options.power_heterogeneity, 1.0 + 3.0 * options.power_heterogeneity);
    }
    if (options.speed_heterogeneity > 0.0) {
      sf = clamp(rng.normal(1.0, options.speed_heterogeneity),
                 1.0 - 3.0 * options.speed_heterogeneity, 1.0 + 3.0 * options.speed_heterogeneity);
    }
    NodeSpec node_spec = spec.perturbed(pf, sf);
    const common::NodeId id = node_ids_.next();
    info.node_indices.push_back(nodes_.size());
    nodes_.push_back(std::make_unique<Node>(id, name + "-" + std::to_string(i),
                                            std::move(node_spec), info.id, options.thermal,
                                            options.initially_on));
    // Every node of a cluster advertises the same catalog figures; its
    // *actual* behaviour is the perturbed spec.
    nodes_.back()->set_nameplate(spec);
  }

  clusters_.push_back(std::move(info));
  return clusters_.back().id;
}

Node* Platform::find_node(common::NodeId id) noexcept {
  for (auto& n : nodes_) {
    if (n->id() == id) return n.get();
  }
  return nullptr;
}

Node* Platform::find_node_by_name(const std::string& name) noexcept {
  for (auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

const ClusterInfo* Platform::find_cluster(const std::string& name) const noexcept {
  for (const auto& c : clusters_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

Watts Platform::total_power(Seconds now) {
  Watts total{0.0};
  for (auto& n : nodes_) total += n->power(now);
  return total;
}

Joules Platform::total_energy(Seconds now) {
  Joules total{0.0};
  for (auto& n : nodes_) total += n->energy(now);
  return total;
}

Joules Platform::cluster_energy(common::ClusterId id, Seconds now) {
  Joules total{0.0};
  for (const auto& c : clusters_) {
    if (c.id != id) continue;
    for (std::size_t i : c.node_indices) total += nodes_[i]->energy(now);
  }
  return total;
}

unsigned Platform::total_cores() const noexcept {
  unsigned total = 0;
  for (const auto& n : nodes_) total += n->spec().cores;
  return total;
}

void Platform::set_ambient(Celsius ambient) noexcept {
  for (auto& n : nodes_) n->set_ambient(ambient);
}

}  // namespace greensched::cluster
