#include "cluster/dvfs_governor.hpp"

namespace greensched::cluster {

OndemandGovernor::OndemandGovernor(Platform& platform, DvfsLadder ladder, common::Seconds now) {
  for (std::size_t i = 0; i < platform.node_count(); ++i) {
    Node& node = platform.node(i);
    node.set_dvfs_ladder(ladder);
    if (node.busy_cores() == 0) node.set_pstate(now, node.dvfs_ladder().slowest());
    node.set_load_change_hook(
        [this](Node& n, common::Seconds at) { on_load_change(n, at); });
  }
}

void OndemandGovernor::on_load_change(Node& node, common::Seconds now) {
  const std::size_t wanted =
      node.busy_cores() > 0 ? node.dvfs_ladder().fastest() : node.dvfs_ladder().slowest();
  if (node.pstate() != wanted) {
    node.set_pstate(now, wanted);
    ++transitions_;
  }
}

}  // namespace greensched::cluster
