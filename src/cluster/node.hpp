// Compute node model: power state machine, core occupancy, exact energy
// integration and a first-order thermal model.
//
// The node is the physical substrate the middleware schedules onto.  Its
// power draw is a function of state and load:
//   OFF           -> off_watts          (residual draw)
//   BOOTING       -> boot_watts         (the paper's bc_s)
//   ON, k busy    -> idle + (peak-idle) * k/cores   (linear model)
//   SHUTTING_DOWN -> idle_watts
// Energy is integrated exactly at every state change, so accounting does
// not depend on the wattmeter's sampling rate (the wattmeter *measures*
// the same signal, as the real Omegawatt meters do).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cluster/dvfs.hpp"
#include "cluster/node_spec.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"

namespace greensched::cluster {

using common::Celsius;
using common::ClusterId;
using common::Joules;
using common::NodeId;
using common::Seconds;
using common::Watts;

enum class NodeState { kOff, kBooting, kOn, kShuttingDown, kFailed };

[[nodiscard]] const char* to_string(NodeState state) noexcept;

/// Thermal behaviour knobs.  T converges to ambient + rise_per_watt * P
/// with time constant tau; the provisioner reads temperature to detect the
/// heat events of Section IV-C.
struct ThermalConfig {
  Celsius ambient{20.0};
  /// degC per W at steady state: chosen so the hottest Table I machine at
  /// full load stays below the 25 degC administrator threshold under a
  /// normal 20 degC ambient (orion at 400 W -> 24.4 degC).
  double rise_per_watt = 0.011;
  Seconds tau{300.0};  ///< first-order time constant
};

class Node {
 public:
  Node(NodeId id, std::string name, NodeSpec spec, ClusterId cluster,
       ThermalConfig thermal = {}, bool initially_on = true);

  // --- identity ---
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The machine's *actual* electrical/compute behaviour.
  [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }
  /// The *advertised* figures (catalog/benchmark values).  With per-node
  /// heterogeneity these differ from spec() — "your cluster is not power
  /// homogeneous" — which is exactly why the paper prefers the dynamic
  /// (measured) method over a static benchmark.  Defaults to spec().
  [[nodiscard]] const NodeSpec& nameplate() const noexcept { return nameplate_; }
  void set_nameplate(NodeSpec nameplate);
  [[nodiscard]] common::ClusterId cluster() const noexcept { return cluster_; }

  // --- state machine ---
  [[nodiscard]] NodeState state() const noexcept { return state_; }
  [[nodiscard]] bool is_on() const noexcept { return state_ == NodeState::kOn; }
  /// OFF -> BOOTING.  The caller must call complete_boot() boot_seconds
  /// later (the DES schedules it).  Throws StateError from other states.
  void power_on(Seconds now);
  /// BOOTING -> ON.
  void complete_boot(Seconds now);
  /// ON (and idle) -> SHUTTING_DOWN; throws if cores are busy.
  void power_off(Seconds now);
  /// SHUTTING_DOWN -> OFF.
  void complete_shutdown(Seconds now);
  /// Crash: ON/BOOTING/SHUTTING_DOWN -> FAILED.  Busy cores are lost
  /// (the middleware layer is responsible for resubmitting their tasks —
  /// grid tools "interpret powered-off resources as failures", §II-B).
  void fail(Seconds now);
  /// FAILED -> OFF (repaired; can be booted again).
  void repair(Seconds now);
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }

  // --- core occupancy ---
  [[nodiscard]] unsigned busy_cores() const noexcept { return busy_cores_; }
  [[nodiscard]] unsigned free_cores() const noexcept { return spec_.cores - busy_cores_; }
  /// Claims one core for a task; node must be ON with a free core.
  void acquire_core(Seconds now);
  /// Releases a core at task completion; also updates the active-energy
  /// bookkeeping used by the dynamic GreenPerf estimate.
  void release_core(Seconds now);

  // --- drain marker (live migration) ---
  /// Marks the node as being actively drained: the migration controller
  /// is moving its running tasks elsewhere so it can power down.  Power
  /// and occupancy are untouched, but the flag IS a discrete state
  /// change — the estimation cache keys on the stamp, and the
  /// provisioner reports draining cores in PlatformStatus — so flipping
  /// it bumps change_stamp_ like every other mutation.
  void set_draining(bool draining) noexcept {
    if (draining_ == draining) return;
    draining_ = draining;
    ++change_stamp_;
  }
  [[nodiscard]] bool draining() const noexcept { return draining_; }

  // --- electrical / thermal observables ---
  /// Instantaneous power at `now` (advances internal integrators).
  [[nodiscard]] Watts power(Seconds now);
  /// Instantaneous power from current state without advancing time.
  [[nodiscard]] Watts instantaneous_power() const noexcept;
  /// Total energy consumed since construction, integrated to `now`.
  [[nodiscard]] Joules energy(Seconds now);
  /// Energy consumed while at least one core was busy ("active" energy —
  /// the paper's dynamic power estimate divides this by active time).
  [[nodiscard]] Joules active_energy(Seconds now);
  [[nodiscard]] Seconds active_time(Seconds now);
  /// Node temperature from the first-order thermal model.
  [[nodiscard]] Celsius temperature(Seconds now);

  /// Raises/lowers the thermal ambient (heat-event injection).
  void set_ambient(Celsius ambient) noexcept {
    thermal_.ambient = ambient;
    ++change_stamp_;
  }
  [[nodiscard]] const ThermalConfig& thermal_config() const noexcept { return thermal_; }

  // --- DVFS ---
  /// Installs a P-state ladder (default: a single full-speed state).
  void set_dvfs_ladder(DvfsLadder ladder);
  [[nodiscard]] const DvfsLadder& dvfs_ladder() const noexcept { return ladder_; }
  /// Switches P-state at `now` (energy is integrated up to the switch).
  void set_pstate(Seconds now, std::size_t index);
  [[nodiscard]] std::size_t pstate() const noexcept { return pstate_; }
  [[nodiscard]] std::uint64_t pstate_transitions() const noexcept { return pstate_transitions_; }
  /// Per-core speed at the current P-state — what a task started now
  /// runs at (the frequency is held for the task's duration).
  [[nodiscard]] FlopsRate current_flops_per_core() const noexcept;

  /// Fires on every acquire_core/release_core (after the change); DVFS
  /// governors use it to react to load events without polling.
  void set_load_change_hook(std::function<void(Node&, Seconds)> hook) {
    load_change_hook_ = std::move(hook);
  }

  /// Fires on every power-state transition (after the change), with the
  /// state left and the state entered.  Purely observational — the test
  /// oracle uses it to replay a run's transition log and assert state
  /// machine legality; nothing in the scheduling path depends on it.
  void set_state_change_hook(
      std::function<void(Node&, NodeState from, NodeState to, Seconds)> hook) {
    state_change_hook_ = std::move(hook);
  }

  // --- counters ---
  [[nodiscard]] std::uint64_t tasks_started() const noexcept { return tasks_started_; }
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept { return tasks_completed_; }
  [[nodiscard]] std::uint64_t boots() const noexcept { return boots_; }

  /// Advances the energy/thermal integrators to `now` (idempotent for
  /// equal timestamps; throws StateError if time moves backwards).
  void advance_to(Seconds now);

  /// Monotone counter bumped on every *discrete* state change: power-state
  /// transitions (boot, shutdown, crash, repair), core acquire/release,
  /// P-state switches, ladder/nameplate/ambient updates.  Pure time
  /// advance (energy/thermal integration) does NOT bump it.  The SED's
  /// estimation cache keys on this stamp: while it is unchanged, every
  /// non-time-dependent estimation tag is provably unchanged too.
  [[nodiscard]] std::uint64_t change_stamp() const noexcept { return change_stamp_; }

 private:
  NodeId id_;
  std::string name_;
  NodeSpec spec_;
  NodeSpec nameplate_;
  common::ClusterId cluster_;
  ThermalConfig thermal_;

  NodeState state_;
  unsigned busy_cores_ = 0;
  bool draining_ = false;

  Seconds last_update_{0.0};
  Seconds state_since_{0.0};  ///< when the current power state was entered
  Joules energy_{0.0};
  Joules active_energy_{0.0};
  Seconds active_time_{0.0};
  Celsius temperature_;

  std::uint64_t tasks_started_ = 0;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t boots_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t change_stamp_ = 0;

  void enter_state(NodeState to, Seconds now);

  DvfsLadder ladder_{};
  std::size_t pstate_ = 0;
  std::uint64_t pstate_transitions_ = 0;
  std::function<void(Node&, Seconds)> load_change_hook_;
  std::function<void(Node&, NodeState, NodeState, Seconds)> state_change_hook_;
};

}  // namespace greensched::cluster
