// SLA admission control: the gs_sla decision layer over MA dispatch.
//
// With an AdmissionController installed, every scheduling round ends in a
// verdict — admit (run on the elected server), defer (re-queue with a
// wake-up event at a policy-chosen time) or reject (terminal, accounted,
// never "lost") — taken jointly with energy-aware dispatch: the SLA
// policies are plug-in schedulers that rank candidates by expected *net
// revenue* (value at estimated completion minus energy cost) through
// green::RankScratch, and the same estimates feed the admit threshold.
//
// Policies:
//   fifo-admit   — admit everything placeable (the baseline the bench
//                  compares against); never defers, never rejects.
//   revenue-det  — Li et al.'s deterministic time-sensitive revenue
//                  scheduler: reject infeasible deadlines and jobs whose
//                  value at the estimated completion does not cover
//                  alpha x the energy cost; defer when the candidate set
//                  is power-capped or saturated but the deadline still
//                  has slack.
//   revenue-rand — Wang et al.'s randomized variant: the admission
//                  threshold is scaled by exp(u - 1), u ~ U[0,1), with
//                  EXACTLY one RNG draw per decision from a split-stream
//                  seeded generator — fixed seed => bit-identical
//                  admit/defer/reject sequences, like gs_chaos storms.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "diet/agent.hpp"
#include "diet/plugin.hpp"
#include "green/ranking.hpp"

namespace greensched::sla {

/// Tunables shared by the admission policies (spec options).
struct PolicyOptions {
  /// Electricity price in value credits per joule; scales the energy
  /// term of net revenue.  The default prices the paper's ~20-50 s tasks
  /// (1e4-ish joules) within an order of magnitude of a bronze value.
  double price_per_joule = 2e-5;
  /// Admission threshold: admit iff value >= alpha * energy cost.
  double alpha = 1.0;
  /// Base defer wake-up delay in seconds.
  double defer_seconds = 15.0;

  void validate() const;
};

/// Everything a policy sees when ruling on one request.
struct AdmissionContext {
  const diet::SchedulingDecision* decision = nullptr;
  const diet::Request* request = nullptr;
  double now = 0.0;  ///< simulated seconds
};

/// An SLA policy is a plug-in scheduler (net-revenue ranking through
/// RankScratch) plus the admit/defer/reject rule.
class SlaPolicy : public diet::PluginScheduler {
 public:
  explicit SlaPolicy(PolicyOptions options);

  /// Ranks candidates by descending expected net revenue; servers whose
  /// speed is still unmeasured (and without nameplate figures) explore
  /// first, tie-broken by the request's random draw — the same learning
  /// phase as the green policies.
  void aggregate(std::vector<diet::Candidate>& candidates,
                 const diet::Request& request) const final;

  /// Rules on the finished decision.  `rng` is the controller's
  /// split-stream generator; only the randomized policy draws from it.
  [[nodiscard]] virtual diet::AdmissionVerdict decide(const AdmissionContext& context,
                                                      common::Rng& rng) const = 0;

  [[nodiscard]] const PolicyOptions& options() const noexcept { return options_; }

  /// The controller wires the simulated clock in: the ranking prices a
  /// candidate's completion on the task's value curve, which is a
  /// function of elapsed time since submission.  Null = price at offset
  /// zero (standalone ranking tests).
  void set_clock(const des::Simulator* sim) noexcept { sim_ = sim; }

 protected:
  [[nodiscard]] double now_seconds() const noexcept;
  /// Effective price for the ranking/threshold: scaled by the request's
  /// Preference_user so P > 0 (performance) discounts energy and P < 0
  /// (green) inflates it — the knob bench_sla_pareto sweeps.
  [[nodiscard]] double effective_price(const diet::Request& request) const noexcept;

  /// Deterministic admit/defer/reject core shared by both revenue
  /// policies; `threshold` is alpha (deterministic) or the randomized
  /// scaling thereof.
  [[nodiscard]] diet::AdmissionVerdict decide_with_threshold(const AdmissionContext& context,
                                                             double threshold) const;

  PolicyOptions options_;
  const des::Simulator* sim_ = nullptr;

 private:
  mutable green::RankScratch scratch_;
};

/// Registry: "fifo-admit", "revenue-det[:k=v,...]", "revenue-rand[:k=v,...]"
/// with options price, alpha, defer.  Throws ConfigError on unknown
/// names/keys (shared spec parser; the CLI maps that to exit code 2).
[[nodiscard]] std::unique_ptr<SlaPolicy> make_sla_policy(const std::string& spec);
[[nodiscard]] std::vector<std::string> sla_policy_names();
[[nodiscard]] bool is_sla_policy(const std::string& spec);
[[nodiscard]] std::string sla_policy_help(const std::string& indent);

/// Owns the policy and its split-stream RNG, and adapts them to the
/// MasterAgent hooks.  install() wires both the ranking plug-in and the
/// admission hook; the controller must outlive the master agent's use.
class AdmissionController {
 public:
  /// `rng` is split once at construction — the policy's draw stream is
  /// independent of every other consumer, so an SLA run perturbs nothing
  /// else and is reproducible from the run seed alone.
  AdmissionController(std::unique_ptr<SlaPolicy> policy, const des::Simulator& sim,
                      common::Rng& rng);

  void install(diet::MasterAgent& master);

  [[nodiscard]] const SlaPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }

 private:
  std::unique_ptr<SlaPolicy> policy_;
  const des::Simulator& sim_;
  common::Rng rng_;
  std::uint64_t decisions_ = 0;
};

}  // namespace greensched::sla
