#include "sla/tier.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/spec.hpp"

namespace greensched::sla {

using common::ConfigError;

namespace {
constexpr const char* kWhat = "sla workload";
constexpr const char* kTierNames[kTierCount] = {"best-effort", "bronze", "silver", "gold"};
}  // namespace

const char* tier_name(unsigned tier) {
  if (tier >= kTierCount) throw ConfigError("tier_name: tier out of range");
  return kTierNames[tier];
}

TierTemplate tier_template(unsigned tier) {
  // Shapes follow the usual contract ladder: premium tiers pay a
  // multiple of the base value but forfeit it quickly, cheap tiers keep
  // a residual value all the way to a loose deadline.
  switch (tier) {
    case 0: return TierTemplate{0.0, 0.0, 0.0, 0.0};          // best-effort
    case 1: return TierTemplate{1.0, 2.0, 0.5, 0.25};         // bronze
    case 2: return TierTemplate{3.0, 1.0, 0.4, 0.0};          // silver
    case 3: return TierTemplate{8.0, 0.6, 0.3, 0.0};          // gold
    default: throw ConfigError("tier_template: tier out of range");
  }
}

void SlaWorkloadOptions::validate() const {
  for (const double f : {gold, silver, bronze}) {
    if (!(f >= 0.0 && f <= 1.0))
      throw ConfigError("sla workload 'sla': tier fractions must be in [0, 1]");
  }
  if (gold + silver + bronze > 1.0 + 1e-12)
    throw ConfigError("sla workload 'sla': tier fractions sum past 1");
  if (!(deadline > 0.0))
    throw ConfigError("sla workload 'sla': deadline must be positive");
  if (!(value >= 0.0)) throw ConfigError("sla workload 'sla': value must be non-negative");
}

std::string SlaWorkloadOptions::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "sla:gold=%.9g,silver=%.9g,bronze=%.9g,deadline=%.9g,value=%.9g",
                gold, silver, bronze, deadline, value);
  return buf;
}

SlaWorkloadOptions parse_sla_workload(const std::string& spec) {
  SlaWorkloadOptions options;
  if (spec.empty()) return options;
  const common::ParsedSpec parsed = common::parse_spec(spec, kWhat);
  if (parsed.name != "sla")
    throw ConfigError("unknown workload profile '" + parsed.name + "' (known: sla)");
  for (const common::SpecOption& option : parsed.options) {
    if (option.key == "gold") options.gold = common::spec_fraction(option, parsed.name, kWhat);
    else if (option.key == "silver")
      options.silver = common::spec_fraction(option, parsed.name, kWhat);
    else if (option.key == "bronze")
      options.bronze = common::spec_fraction(option, parsed.name, kWhat);
    else if (option.key == "deadline")
      options.deadline = common::spec_double(option, parsed.name, kWhat);
    else if (option.key == "value")
      options.value = common::spec_double(option, parsed.name, kWhat);
    else
      common::unknown_spec_option(option, parsed.name, kWhat,
                                  "gold, silver, bronze, deadline, value");
  }
  options.validate();
  return options;
}

void apply_tier(workload::TaskSpec& spec, unsigned tier, const SlaWorkloadOptions& options) {
  const TierTemplate t = tier_template(tier);
  spec.sla_tier = tier;
  spec.value = workload::ValueCurve();
  if (t.deadline_multiplier <= 0.0) {
    spec.deadline_seconds = 0.0;  // best-effort: no deadline, no revenue
    return;
  }
  const double deadline = options.deadline * t.deadline_multiplier;
  const double peak = options.value * t.value_multiplier;
  spec.deadline_seconds = deadline;
  workload::ValueCurve curve;
  curve.add(0.0, peak);
  if (t.flat_fraction > 0.0 && t.flat_fraction < 1.0)
    curve.add(deadline * t.flat_fraction, peak);
  curve.add(deadline, peak * t.tail_fraction);
  curve.validate();
  spec.value = curve;
}

void apply_sla_profile(std::vector<workload::TaskInstance>& tasks,
                       const SlaWorkloadOptions& options, common::Rng& rng) {
  options.validate();
  if (!options.enabled()) return;
  for (workload::TaskInstance& task : tasks) {
    // One draw per task, in task order — the determinism contract.
    const double u = rng.uniform();
    unsigned tier = 0;
    if (u < options.gold) tier = 3;
    else if (u < options.gold + options.silver) tier = 2;
    else if (u < options.gold + options.silver + options.bronze) tier = 1;
    apply_tier(task.spec, tier, options);
    task.spec.validate();
  }
}

std::string sla_workload_help(const std::string& indent) {
  std::string out;
  auto line = [&](const char* text) {
    out += indent;
    out += text;
    out += '\n';
  };
  line("sla:gold=F,silver=F,bronze=F,deadline=S,value=V");
  line("                         decorate the generated workload with SLA tiers:");
  line("                         fractions of gold/silver/bronze tasks (remainder");
  line("                         best-effort), base deadline seconds and base value");
  return out;
}

}  // namespace greensched::sla
