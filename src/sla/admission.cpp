#include "sla/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/spec.hpp"

namespace greensched::sla {

using common::ConfigError;
using diet::Admission;
using diet::AdmissionVerdict;
using diet::Candidate;
using diet::EstTag;
using diet::Request;

namespace {

constexpr const char* kWhat = "sla policy";

/// Minimum defer wake-up delay.  `min(defer, remaining/2)` shrinks
/// toward zero as a deadline closes in (and a legal `defer=1e-9` spec
/// starts there): without a floor the wake-up fires at effectively the
/// same instant, and a saturated platform busy-loops defer rounds.  One
/// millisecond is far below any boot/transfer time yet keeps the event
/// count bounded.
constexpr double kDeferFloorSeconds = 1e-3;

double tie_break(const Candidate& c) {
  return c.estimation.get_or(EstTag::kRandomDraw, 0.0);
}

/// What the decision layer can predict about running the task on one
/// candidate, from its estimation vector alone.
struct CandidateEstimate {
  bool known = false;           ///< speed figure available (measured or nameplate)
  double wait_seconds = 0.0;    ///< w_s before a core frees
  double run_seconds = 0.0;     ///< work / per-core rate
  double energy_joules = 0.0;   ///< node power x run time
};

CandidateEstimate estimate_candidate(const diet::EstimationVector& est,
                                     const Request& request) {
  CandidateEstimate out;
  // Measured rate when the server has completed work, nameplate as the
  // fallback — the same learning ladder as the green policies.
  double rate = est.get_or(EstTag::kMeasuredFlopsPerCore, 0.0);
  if (rate <= 0.0) rate = est.get_or(EstTag::kSpecFlopsPerCore, 0.0);
  if (rate <= 0.0 || !std::isfinite(rate)) return out;
  out.known = true;
  out.wait_seconds = est.get_or(EstTag::kQueueWaitSeconds, 0.0);
  out.run_seconds = request.task.spec.work.value() / rate;
  double power = est.get_or(EstTag::kMeasuredPowerWatts, 0.0);
  if (power <= 0.0) power = est.get_or(EstTag::kSpecPeakPowerWatts, 0.0);
  out.energy_joules = std::max(power, 0.0) * out.run_seconds;
  return out;
}

}  // namespace

void PolicyOptions::validate() const {
  if (!(price_per_joule >= 0.0) || !std::isfinite(price_per_joule))
    throw ConfigError("sla policy: price must be finite and non-negative");
  if (!(alpha >= 0.0) || !std::isfinite(alpha))
    throw ConfigError("sla policy: alpha must be finite and non-negative");
  if (!(defer_seconds > 0.0) || !std::isfinite(defer_seconds))
    throw ConfigError("sla policy: defer must be positive");
}

SlaPolicy::SlaPolicy(PolicyOptions options) : options_(options) { options_.validate(); }

double SlaPolicy::now_seconds() const noexcept {
  return sim_ != nullptr ? sim_->now().value() : 0.0;
}

double SlaPolicy::effective_price(const Request& request) const noexcept {
  // P in [-0.9, 0.9]: performance-leaning users discount the energy term
  // (price -> 0.1x at P = 0.9), green-leaning ones inflate it (1.9x at
  // P = -0.9).  P = 0 is the nominal price.
  return options_.price_per_joule * (1.0 - request.user_preference);
}

void SlaPolicy::aggregate(std::vector<Candidate>& candidates, const Request& request) const {
  const double elapsed_now = std::max(0.0, now_seconds() - request.task.submit_time.value());
  const double price = effective_price(request);
  const workload::ValueCurve& curve = request.task.spec.value;
  scratch_.sort(candidates, /*unknown_last=*/false, [&](const Candidate& c) {
    const CandidateEstimate est = estimate_candidate(c.estimation, request);
    // Learning phase: servers without any speed figure explore first.
    if (!est.known) return green::RankedKey{true, 0.0, tie_break(c)};
    const double completion = elapsed_now + est.wait_seconds + est.run_seconds;
    const double net = curve.value_at(completion) - price * est.energy_joules;
    // Descending net revenue == ascending -net; NaN (degenerate spec
    // figures) lands in the unknown bucket via RankScratch.
    return green::RankedKey{false, -net, tie_break(c)};
  });
}

diet::AdmissionVerdict SlaPolicy::decide_with_threshold(const AdmissionContext& context,
                                                        double threshold) const {
  const diet::SchedulingDecision& decision = *context.decision;
  const Request& request = *context.request;
  const workload::TaskSpec& spec = request.task.spec;
  if (!spec.has_sla()) return {Admission::kAdmit, 0.0};

  const double elapsed_now = std::max(0.0, context.now - request.task.submit_time.value());
  const double deadline = spec.deadline_seconds;
  const bool timed = deadline > 0.0;
  const double remaining =
      timed ? deadline - elapsed_now : std::numeric_limits<double>::infinity();

  // Defer while the deadline still has room for a wake-up round,
  // otherwise the request can only be turned away.
  const auto defer_or_reject = [&]() -> AdmissionVerdict {
    if (remaining > options_.defer_seconds) {
      const double delay =
          std::max(std::min(options_.defer_seconds, remaining / 2.0), kDeferFloorSeconds);
      return {Admission::kDefer, delay};
    }
    return {Admission::kReject, 0.0};
  };

  // Dead on arrival at the decision: the deadline passed while the
  // request sat queued/deferred.  Deferring would schedule a wake-up
  // with non-positive slack (a busy-loop under saturation), so turn it
  // away — flagged so the client books an SLA violation, not a refusal.
  if (timed && remaining <= 0.0) return {Admission::kReject, 0.0, /*deadline_expired=*/true};

  // Power-capped out of existence: the provisioner's filter left nothing
  // eligible.  A timed request waits for capacity only while it can.
  if (decision.eligible == 0 || decision.ranked.empty()) {
    if (!timed) return {Admission::kAdmit, 0.0};  // passive legacy queue
    return defer_or_reject();
  }

  // Judge on the server the ranking chose: the elected one, or the head
  // of the ranked list when everyone is saturated.
  const Candidate* best = nullptr;
  if (decision.elected != nullptr) {
    for (const Candidate& c : decision.ranked) {
      if (c.sed == decision.elected) {
        best = &c;
        break;
      }
    }
  }
  if (best == nullptr) best = &decision.ranked.front();

  const CandidateEstimate est = estimate_candidate(best->estimation, request);
  if (est.known) {
    const double completion = elapsed_now + est.wait_seconds + est.run_seconds;
    if (timed && completion > deadline) {
      // Starting on the elected server already misses the deadline:
      // infeasible, and waiting only shrinks the slack.  When merely the
      // *visible* best is too slow/busy, a wake-up may find better.
      if (decision.elected != nullptr) return {Admission::kReject, 0.0};
      return defer_or_reject();
    }
    if (!spec.value.empty()) {
      const double value = spec.value.value_at(completion);
      const double cost = effective_price(request) * est.energy_joules;
      // Li et al.'s admission rule: revenue must cover the (threshold-
      // scaled) energy bill, or serving the job loses money.
      if (value < threshold * cost) return {Admission::kReject, 0.0};
    }
  }

  if (decision.elected == nullptr) {
    // Feasible but saturated: timed requests get a wake-up event,
    // untimed ones fall back to the passive completion-driven queue.
    if (!timed) return {Admission::kAdmit, 0.0};
    return defer_or_reject();
  }
  return {Admission::kAdmit, 0.0};
}

namespace {

/// Admit-everything baseline: same net-revenue ranking (so energy is
/// comparable in the Pareto bench), no gate.
class FifoAdmitPolicy final : public SlaPolicy {
 public:
  using SlaPolicy::SlaPolicy;
  [[nodiscard]] std::string name() const override { return "SLA-FIFO-ADMIT"; }
  [[nodiscard]] AdmissionVerdict decide(const AdmissionContext&, common::Rng&) const override {
    return {Admission::kAdmit, 0.0};
  }
  [[nodiscard]] std::unique_ptr<diet::PluginScheduler> clone_for_shard() const override {
    auto clone = std::make_unique<FifoAdmitPolicy>(options());
    clone->set_clock(sim_);
    return clone;
  }
};

/// Li et al.: deterministic time-sensitive revenue admission.
class RevenueDetPolicy final : public SlaPolicy {
 public:
  using SlaPolicy::SlaPolicy;
  [[nodiscard]] std::string name() const override { return "SLA-REVENUE-DET"; }
  [[nodiscard]] AdmissionVerdict decide(const AdmissionContext& context,
                                        common::Rng&) const override {
    return decide_with_threshold(context, options_.alpha);
  }
  [[nodiscard]] std::unique_ptr<diet::PluginScheduler> clone_for_shard() const override {
    auto clone = std::make_unique<RevenueDetPolicy>(options());
    clone->set_clock(sim_);
    return clone;
  }
};

/// Wang et al.: randomized threshold exp(u - 1), one draw per decision.
class RevenueRandPolicy final : public SlaPolicy {
 public:
  using SlaPolicy::SlaPolicy;
  [[nodiscard]] std::string name() const override { return "SLA-REVENUE-RAND"; }
  [[nodiscard]] AdmissionVerdict decide(const AdmissionContext& context,
                                        common::Rng& rng) const override {
    // Exactly one draw per decision on an SLA-bearing request, whatever
    // the verdict — the stream position depends only on the decision
    // count, which is what makes storms replayable.  Best-effort
    // requests bypass admission entirely and must not consume draws.
    if (!context.request->task.spec.has_sla()) return {Admission::kAdmit, 0.0};
    const double u = rng.uniform();
    const double threshold = options_.alpha * std::exp(u - 1.0);
    return decide_with_threshold(context, threshold);
  }
  [[nodiscard]] std::unique_ptr<diet::PluginScheduler> clone_for_shard() const override {
    auto clone = std::make_unique<RevenueRandPolicy>(options());
    clone->set_clock(sim_);
    return clone;
  }
};

}  // namespace

std::unique_ptr<SlaPolicy> make_sla_policy(const std::string& spec) {
  const common::ParsedSpec parsed = common::parse_spec(spec, kWhat);
  PolicyOptions options;
  for (const common::SpecOption& option : parsed.options) {
    if (option.key == "price") options.price_per_joule = common::spec_double(option, parsed.name, kWhat);
    else if (option.key == "alpha") options.alpha = common::spec_double(option, parsed.name, kWhat);
    else if (option.key == "defer") options.defer_seconds = common::spec_double(option, parsed.name, kWhat);
    else common::unknown_spec_option(option, parsed.name, kWhat, "price, alpha, defer");
  }
  if (parsed.name == "fifo-admit") return std::make_unique<FifoAdmitPolicy>(options);
  if (parsed.name == "revenue-det") return std::make_unique<RevenueDetPolicy>(options);
  if (parsed.name == "revenue-rand") return std::make_unique<RevenueRandPolicy>(options);
  throw ConfigError("unknown sla policy '" + parsed.name +
                    "' (known: fifo-admit, revenue-det, revenue-rand)");
}

std::vector<std::string> sla_policy_names() {
  return {"fifo-admit", "revenue-det", "revenue-rand"};
}

bool is_sla_policy(const std::string& spec) {
  const std::string name = common::spec_base_name(spec);
  const std::vector<std::string> names = sla_policy_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::string sla_policy_help(const std::string& indent) {
  std::string out;
  auto line = [&](const char* text) {
    out += indent;
    out += text;
    out += '\n';
  };
  line("fifo-admit[:price=C,alpha=A,defer=S]");
  line("                         admit everything placeable (baseline); net-revenue");
  line("                         ranking, no gate");
  line("revenue-det[:price=C,alpha=A,defer=S]");
  line("                         Li et al. deterministic time-sensitive revenue");
  line("                         admission: reject infeasible deadlines and jobs whose");
  line("                         value misses alpha x energy cost; defer on saturation");
  line("revenue-rand[:price=C,alpha=A,defer=S]");
  line("                         Wang et al. randomized threshold (one RNG draw per");
  line("                         decision, split-stream seeded)");
  return out;
}

AdmissionController::AdmissionController(std::unique_ptr<SlaPolicy> policy,
                                         const des::Simulator& sim, common::Rng& rng)
    : policy_(std::move(policy)), sim_(sim), rng_(rng.split()) {
  if (!policy_) throw ConfigError("AdmissionController: null policy");
  policy_->set_clock(&sim_);
}

void AdmissionController::install(diet::MasterAgent& master) {
  master.set_plugin(policy_.get());
  master.set_admission_hook(
      [this](const diet::SchedulingDecision& decision, const Request& request) {
        ++decisions_;
        AdmissionContext context;
        context.decision = &decision;
        context.request = &request;
        context.now = sim_.now().value();
        return policy_->decide(context, rng_);
      });
}

}  // namespace greensched::sla
