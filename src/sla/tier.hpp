// SLA tiers and the sla: workload profile.
//
// A tier is a contract shape: how much a completion pays, how tight the
// deadline is, and how the value decays toward it (Li et al.'s
// time-sensitive revenue model).  The `--workload sla:<k=v,...>` spec
// mixes tiers over a generated workload — each task draws its tier from
// the mix with exactly one RNG draw, split-stream seeded, so a fixed seed
// produces a bit-identical tier assignment at any sweep jobs count.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/task.hpp"

namespace greensched::sla {

/// Tier count, mirrored from the task model (0 = best-effort .. 3 = gold).
inline constexpr unsigned kTierCount = workload::kSlaTierCount;

/// Canonical tier name ("best-effort", "bronze", "silver", "gold");
/// throws ConfigError on an out-of-range tier.
[[nodiscard]] const char* tier_name(unsigned tier);

/// Per-tier contract shape, scaled by the profile's base deadline/value.
struct TierTemplate {
  double value_multiplier = 0.0;     ///< peak value = multiplier * base value
  double deadline_multiplier = 0.0;  ///< deadline = multiplier * base (0 = none)
  double flat_fraction = 0.0;        ///< fraction of deadline at full value
  double tail_fraction = 0.0;        ///< value fraction still paid AT the deadline
};

/// The built-in contract shapes.  Gold pays the most under the tightest
/// deadline; best-effort pays nothing and never expires.
[[nodiscard]] TierTemplate tier_template(unsigned tier);

/// Parsed `sla:<k=v,...>` workload profile.
struct SlaWorkloadOptions {
  double gold = 0.0;    ///< fraction of tasks on the gold tier
  double silver = 0.0;  ///< fraction on silver
  double bronze = 0.0;  ///< fraction on bronze (remainder = best-effort)
  double deadline = 180.0;  ///< base deadline seconds (silver's deadline)
  double value = 1.0;       ///< base value credits (bronze's peak value)

  [[nodiscard]] bool enabled() const noexcept { return gold + silver + bronze > 0.0; }
  /// Throws ConfigError on fractions outside [0,1] or summing past 1,
  /// a non-positive deadline or a negative value.
  void validate() const;
  /// Canonical spec string (feeds the sweep checkpoint fingerprint).
  [[nodiscard]] std::string to_string() const;
};

/// Parses "sla:gold=0.2,silver=0.3,bronze=0.3,deadline=180,value=1".
/// The empty string yields a disabled default; unknown keys throw
/// ConfigError through the shared spec parser (CLI exit code 2).
[[nodiscard]] SlaWorkloadOptions parse_sla_workload(const std::string& spec);

/// Writes the tier contract (deadline, tier index, value curve) onto a
/// task spec.  Best-effort (tier 0) clears the contract.
void apply_tier(workload::TaskSpec& spec, unsigned tier, const SlaWorkloadOptions& options);

/// Decorates a generated workload with tiers drawn from the mix: exactly
/// one RNG draw per task, in task order.  A disabled profile is a no-op
/// (and should not have consumed an RNG split upstream).
void apply_sla_profile(std::vector<workload::TaskInstance>& tasks,
                       const SlaWorkloadOptions& options, common::Rng& rng);

/// CLI help block for `--workload sla:`.
[[nodiscard]] std::string sla_workload_help(const std::string& indent);

}  // namespace greensched::sla
