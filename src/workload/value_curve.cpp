#include "workload/value_curve.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace greensched::workload {

using common::ConfigError;

double ValueCurve::value_at(double elapsed) const noexcept {
  if (points_.empty()) return 0.0;
  if (elapsed <= points_.front().at) return points_.front().value;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const ValuePoint& a = points_[i - 1];
    const ValuePoint& b = points_[i];
    if (elapsed <= b.at) {
      const double span = b.at - a.at;
      if (span <= 0.0) return b.value;  // unreachable once validated
      const double t = (elapsed - a.at) / span;
      return a.value + t * (b.value - a.value);
    }
  }
  return points_.back().value;
}

double ValueCurve::peak() const noexcept {
  return points_.empty() ? 0.0 : points_.front().value;
}

void ValueCurve::validate() const {
  double previous_at = -1.0;
  double previous_value = 0.0;
  bool first = true;
  for (const ValuePoint& p : points_) {
    if (!std::isfinite(p.at) || p.at < 0.0)
      throw ConfigError("ValueCurve: breakpoint time must be finite and non-negative");
    if (!std::isfinite(p.value) || p.value < 0.0)
      throw ConfigError("ValueCurve: breakpoint value must be finite and non-negative");
    if (!first) {
      if (p.at <= previous_at)
        throw ConfigError("ValueCurve: breakpoint times must be strictly increasing");
      if (p.value > previous_value)
        throw ConfigError("ValueCurve: breakpoint values must be non-increasing "
                          "(revenue only decays toward the deadline)");
    }
    previous_at = p.at;
    previous_value = p.value;
    first = false;
  }
}

std::string ValueCurve::to_string() const {
  std::string out;
  char buf[64];
  for (const ValuePoint& p : points_) {
    std::snprintf(buf, sizeof buf, "%.9g:%.9g", p.at, p.value);
    if (!out.empty()) out += ';';
    out += buf;
  }
  return out;
}

ValueCurve ValueCurve::from_string(const std::string& text) {
  ValueCurve curve;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t semi = text.find(';', start);
    if (semi == std::string::npos) semi = text.size();
    const std::string token = text.substr(start, semi - start);
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos || colon == 0 || colon == token.size() - 1)
      throw ConfigError("ValueCurve: breakpoint '" + token + "' is not at:value");
    char* end = nullptr;
    const std::string at_text = token.substr(0, colon);
    const std::string value_text = token.substr(colon + 1);
    const double at = std::strtod(at_text.c_str(), &end);
    if (end != at_text.c_str() + at_text.size())
      throw ConfigError("ValueCurve: bad breakpoint time '" + at_text + "'");
    const double value = std::strtod(value_text.c_str(), &end);
    if (end != value_text.c_str() + value_text.size())
      throw ConfigError("ValueCurve: bad breakpoint value '" + value_text + "'");
    curve.add(at, value);
    start = semi + 1;
  }
  curve.validate();
  return curve;
}

}  // namespace greensched::workload
