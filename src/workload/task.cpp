#include "workload/task.hpp"

#include <cmath>

#include "common/error.hpp"

namespace greensched::workload {

void TaskSpec::validate() const {
  if (service.empty()) throw common::ConfigError("TaskSpec: service name must not be empty");
  if (work.value() <= 0.0) throw common::ConfigError("TaskSpec: work must be positive");
  if (cores == 0) throw common::ConfigError("TaskSpec: cores must be >= 1");
  // A NaN deadline would compare false against every feasibility test and
  // silently disable admission control, so insist on finite >= 0.
  if (!std::isfinite(deadline_seconds) || deadline_seconds < 0.0)
    throw common::ConfigError("TaskSpec: deadline must be finite and non-negative");
  if (sla_tier >= kSlaTierCount)
    throw common::ConfigError("TaskSpec: sla tier must be below " +
                              std::to_string(kSlaTierCount));
  value.validate();
}

TaskSpec paper_cpu_bound_task() {
  TaskSpec spec;
  spec.service = "cpu-bound";
  // Calibrated so that the steady-state demand of the Section IV-A
  // workload (2 requests/second) occupies ~46 cores — just inside one
  // cluster's 48-core capacity: 2.1e11 FLOP runs 22.8 s on a Taurus
  // core, 21.4 s on Orion, 52.5 s on Sagittaire.
  spec.work = common::Flops(2.1e11);
  spec.cores = 1;
  return spec;
}

}  // namespace greensched::workload
