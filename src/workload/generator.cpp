#include "workload/generator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace greensched::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config) : config_(std::move(config)) {
  config_.task.validate();
  if (config_.requests_per_core <= 0.0)
    throw common::ConfigError("WorkloadGenerator: requests_per_core must be positive");
  if (config_.continuous_rate <= 0.0)
    throw common::ConfigError("WorkloadGenerator: continuous_rate must be positive");
  if (config_.user_preference < -0.9 || config_.user_preference > 0.9)
    throw common::ConfigError("WorkloadGenerator: user preference outside [-0.9, 0.9]");
}

std::size_t WorkloadGenerator::task_count(unsigned total_cores) const noexcept {
  return static_cast<std::size_t>(
      std::llround(config_.requests_per_core * static_cast<double>(total_cores)));
}

std::vector<TaskInstance> WorkloadGenerator::generate(unsigned total_cores,
                                                      common::Rng& rng) const {
  BurstThenContinuousArrival arrival(config_.burst_size, config_.continuous_rate);
  return generate_with(arrival, task_count(total_cores), Seconds(0.0), rng);
}

std::vector<TaskInstance> WorkloadGenerator::generate_with(const ArrivalProcess& arrival,
                                                           std::size_t count, Seconds start,
                                                           common::Rng& rng) const {
  const std::vector<Seconds> times = arrival.generate(count, start, rng);
  std::vector<TaskInstance> out;
  out.reserve(count);
  common::IdAllocator<TaskId> ids;
  for (std::size_t i = 0; i < count; ++i) {
    TaskInstance task;
    task.id = ids.next();
    task.spec = config_.task;
    task.submit_time = times[i];
    task.user_preference = config_.user_preference;
    out.push_back(std::move(task));
  }
  return out;
}

}  // namespace greensched::workload
