// Piecewise-linear revenue curves: what a task is worth as a function of
// when it completes.
//
// Li et al.'s time-sensitive revenue model attaches to each job a value
// that is highest when the job finishes promptly and decays toward the
// deadline; we represent that as breakpoints (elapsed seconds since
// submission, value) with linear interpolation between them, constant
// extrapolation before the first point and after the last.  An empty
// curve means "best effort": the task carries no revenue.
#pragma once

#include <string>
#include <vector>

namespace greensched::workload {

struct ValuePoint {
  double at = 0.0;     ///< elapsed seconds since submission
  double value = 0.0;  ///< revenue if the task completes at `at`
};

class ValueCurve {
 public:
  ValueCurve() = default;
  explicit ValueCurve(std::vector<ValuePoint> points) : points_(std::move(points)) {}

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<ValuePoint>& points() const noexcept { return points_; }

  /// Appends a breakpoint (validate() enforces ordering later).
  void add(double at, double value) { points_.push_back(ValuePoint{at, value}); }

  /// Revenue for a completion `elapsed` seconds after submission; 0 for an
  /// empty curve.  Deadline violations are judged by the task's deadline,
  /// not here — the curve only prices on-time completions.
  [[nodiscard]] double value_at(double elapsed) const noexcept;

  /// Peak revenue (the first breakpoint's value once validated); 0 when empty.
  [[nodiscard]] double peak() const noexcept;

  /// Throws ConfigError unless breakpoint times are finite, non-negative
  /// and strictly increasing, and values are finite, non-negative and
  /// non-increasing (revenue may only decay toward the deadline).
  void validate() const;

  /// Compact "at:value;at:value" form, embeddable in a CSV field (the
  /// trace column) and an XML attribute.  Empty string for an empty curve.
  [[nodiscard]] std::string to_string() const;
  /// Parses to_string() output; throws ConfigError on malformed text or a
  /// curve that fails validate().  An empty string is the empty curve.
  [[nodiscard]] static ValueCurve from_string(const std::string& text);

  friend bool operator==(const ValueCurve& a, const ValueCurve& b) noexcept {
    if (a.points_.size() != b.points_.size()) return false;
    for (std::size_t i = 0; i < a.points_.size(); ++i) {
      if (a.points_[i].at != b.points_[i].at || a.points_[i].value != b.points_[i].value)
        return false;
    }
    return true;
  }

 private:
  std::vector<ValuePoint> points_;
};

}  // namespace greensched::workload
