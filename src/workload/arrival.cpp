#include "workload/arrival.hpp"

#include "common/error.hpp"

namespace greensched::workload {

using common::ConfigError;

std::vector<Seconds> BurstArrival::generate(std::size_t count, Seconds start,
                                            common::Rng& /*rng*/) const {
  return std::vector<Seconds>(count, start);
}

FixedRateArrival::FixedRateArrival(double requests_per_second) : rate_(requests_per_second) {
  if (rate_ <= 0.0) throw ConfigError("FixedRateArrival: rate must be positive");
}

std::vector<Seconds> FixedRateArrival::generate(std::size_t count, Seconds start,
                                                common::Rng& /*rng*/) const {
  std::vector<Seconds> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(start + Seconds(static_cast<double>(i) / rate_));
  }
  return out;
}

PoissonArrival::PoissonArrival(double requests_per_second) : rate_(requests_per_second) {
  if (rate_ <= 0.0) throw ConfigError("PoissonArrival: rate must be positive");
}

std::vector<Seconds> PoissonArrival::generate(std::size_t count, Seconds start,
                                              common::Rng& rng) const {
  std::vector<Seconds> out;
  out.reserve(count);
  double t = start.value();
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(rate_);
    out.push_back(Seconds(t));
  }
  return out;
}

BurstThenContinuousArrival::BurstThenContinuousArrival(std::size_t burst_size,
                                                       double requests_per_second)
    : burst_size_(burst_size), rate_(requests_per_second) {
  if (rate_ <= 0.0) throw ConfigError("BurstThenContinuousArrival: rate must be positive");
}

std::vector<Seconds> BurstThenContinuousArrival::generate(std::size_t count, Seconds start,
                                                          common::Rng& /*rng*/) const {
  std::vector<Seconds> out;
  out.reserve(count);
  const std::size_t burst = std::min(burst_size_, count);
  for (std::size_t i = 0; i < burst; ++i) out.push_back(start);
  for (std::size_t i = burst; i < count; ++i) {
    out.push_back(start + Seconds(static_cast<double>(i - burst + 1) / rate_));
  }
  return out;
}

}  // namespace greensched::workload
