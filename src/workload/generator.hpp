// Workload generator: combines a task spec, a task count rule and an
// arrival process into the stream of TaskInstances a client submits.
#pragma once

#include <memory>
#include <vector>

#include "workload/arrival.hpp"
#include "workload/task.hpp"

namespace greensched::workload {

struct WorkloadConfig {
  TaskSpec task = paper_cpu_bound_task();
  /// The paper submits "10 client requests per available core".
  double requests_per_core = 10.0;
  std::size_t burst_size = 50;
  double continuous_rate = 2.0;  ///< requests/second after the burst
  double user_preference = 0.0;  ///< Preference_user attached to each task
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// Task count for a platform exposing `total_cores` cores.
  [[nodiscard]] std::size_t task_count(unsigned total_cores) const noexcept;

  /// Generates submissions for a platform with `total_cores` cores using
  /// the paper's burst+continuous arrival shape.
  [[nodiscard]] std::vector<TaskInstance> generate(unsigned total_cores, common::Rng& rng) const;

  /// Generates exactly `count` tasks with a caller-provided arrival process.
  [[nodiscard]] std::vector<TaskInstance> generate_with(const ArrivalProcess& arrival,
                                                        std::size_t count, Seconds start,
                                                        common::Rng& rng) const;

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }

 private:
  WorkloadConfig config_;
};

}  // namespace greensched::workload
