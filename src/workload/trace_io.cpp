#include "workload/trace_io.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace greensched::workload {

using common::ParseError;

namespace {

// Two accepted header shapes: the pre-SLA 5-column layout (still parsed,
// so archived traces keep replaying) and the extended layout that carries
// the SLA contract.  save_trace always writes the extended form.
constexpr const char* kLegacyHeader = "submit_time,work_flops,cores,service,user_preference";
constexpr const char* kHeader =
    "submit_time,work_flops,cores,service,user_preference,deadline,sla_tier,value_curve";

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      out.push_back(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  out.push_back(field);
  return out;
}

double parse_double_field(const std::string& text, std::size_t line, const char* what) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  // "nan"/"inf" parse fine but poison every downstream computation (and
  // casting them is outright UB), so a trace may only carry finite values.
  if (ec != std::errc{} || ptr != text.data() + text.size() || !std::isfinite(value))
    throw ParseError(std::string("trace: bad ") + what + " '" + text + "'", line, 1);
  return value;
}

}  // namespace

void save_trace(std::ostream& out, const std::vector<TaskInstance>& tasks) {
  out << kHeader << '\n';
  char buf[160];
  for (const auto& task : tasks) {
    std::snprintf(buf, sizeof(buf), "%.9g,%.9g,%u,%s,%.4g,%.9g,%u,", task.submit_time.value(),
                  task.spec.work.value(), task.spec.cores, task.spec.service.c_str(),
                  task.user_preference, task.spec.deadline_seconds, task.spec.sla_tier);
    out << buf << task.spec.value.to_string() << '\n';
  }
}

std::string trace_to_string(const std::vector<TaskInstance>& tasks) {
  std::ostringstream os;
  save_trace(os, tasks);
  return os.str();
}

std::vector<TaskInstance> load_trace(std::istream& in) {
  std::string line;
  std::size_t line_number = 0;

  if (!std::getline(in, line)) throw ParseError("trace: empty input", 1, 1);
  ++line_number;
  // Tolerate trailing \r from Windows-edited files.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const bool legacy = line == kLegacyHeader;
  if (!legacy && line != kHeader)
    throw ParseError("trace: missing header '" + std::string(kHeader) + "'", 1, 1);
  const std::size_t expected_fields = legacy ? 5 : 8;

  std::vector<TaskInstance> tasks;
  common::IdAllocator<common::TaskId> ids;
  double previous_time = -1.0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    const auto fields = split_fields(line);
    if (fields.size() != expected_fields)
      throw ParseError("trace: expected " + std::to_string(expected_fields) +
                           " fields, got " + std::to_string(fields.size()),
                       line_number, 1);

    TaskInstance task;
    task.id = ids.next();
    task.submit_time = common::Seconds(parse_double_field(fields[0], line_number, "submit_time"));
    if (task.submit_time.value() < 0.0)
      throw ParseError("trace: submit_time must be non-negative", line_number, 1);
    task.spec.work = common::Flops(parse_double_field(fields[1], line_number, "work_flops"));
    const double cores = parse_double_field(fields[2], line_number, "cores");
    // Range check BEFORE the cast: float-to-unsigned conversion of an
    // out-of-range value is undefined behaviour, not a wrong answer.
    if (cores < 1.0 || cores > 1e6 ||
        cores != static_cast<double>(static_cast<unsigned>(cores)))
      throw ParseError("trace: cores must be a positive integer (at most 1e6)", line_number, 1);
    task.spec.cores = static_cast<unsigned>(cores);
    task.spec.service = fields[3];
    task.user_preference = parse_double_field(fields[4], line_number, "user_preference");
    if (task.user_preference < -1.0 || task.user_preference > 1.0)
      throw ParseError("trace: user_preference outside [-1, 1]", line_number, 1);
    if (!legacy) {
      // Same discipline as the numeric columns above: parse_double_field
      // already rejects NaN/inf, so only the sign and range remain.
      const double deadline = parse_double_field(fields[5], line_number, "deadline");
      if (deadline < 0.0)
        throw ParseError("trace: deadline must be non-negative", line_number, 1);
      task.spec.deadline_seconds = deadline;
      const double tier = parse_double_field(fields[6], line_number, "sla_tier");
      if (tier < 0.0 || tier >= static_cast<double>(kSlaTierCount) ||
          tier != static_cast<double>(static_cast<unsigned>(tier)))
        throw ParseError("trace: sla_tier must be an integer below " +
                             std::to_string(kSlaTierCount),
                         line_number, 1);
      task.spec.sla_tier = static_cast<unsigned>(tier);
      try {
        // from_string runs ValueCurve::validate, which rejects
        // non-monotone breakpoints and non-finite entries.
        task.spec.value = ValueCurve::from_string(fields[7]);
      } catch (const common::ConfigError& e) {
        throw ParseError(std::string("trace: ") + e.what(), line_number, 1);
      }
    }
    try {
      task.spec.validate();
    } catch (const common::ConfigError& e) {
      // Surface spec problems as parse errors with the offending line.
      throw ParseError(std::string("trace: ") + e.what(), line_number, 1);
    }
    if (task.submit_time.value() < previous_time)
      throw ParseError("trace: submit times must be non-decreasing", line_number, 1);
    previous_time = task.submit_time.value();
    tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<TaskInstance> trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_trace(is);
}

}  // namespace greensched::workload
