// Workload trace I/O: save and replay task submission traces as CSV.
//
// Lets an experiment be captured once and replayed bit-identically (or
// shared), and lets externally produced traces drive the simulator.
// Format (header required):
//   submit_time,work_flops,cores,service,user_preference,deadline,sla_tier,value_curve
// where value_curve is "at:value;at:value" (empty = best effort).  The
// pre-SLA 5-column header is still accepted on load.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/task.hpp"

namespace greensched::workload {

/// Serializes tasks (sorted by submit time) to CSV.
void save_trace(std::ostream& out, const std::vector<TaskInstance>& tasks);
[[nodiscard]] std::string trace_to_string(const std::vector<TaskInstance>& tasks);

/// Parses a CSV trace; throws ParseError (with line info) on malformed
/// input.  Task ids are assigned sequentially in file order.
[[nodiscard]] std::vector<TaskInstance> load_trace(std::istream& in);
[[nodiscard]] std::vector<TaskInstance> trace_from_string(const std::string& text);

}  // namespace greensched::workload
