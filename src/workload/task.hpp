// Task model: what a client asks the middleware to compute.
//
// In the paper's first experiment a task is "a CPU-bound problem which
// consists in 1e8 successive additions", occupying exactly one core.  We
// express tasks as FLOP counts; the default size is calibrated so per-task
// service time on the Table I machines lands in the few-minutes range the
// makespans imply.
#pragma once

#include <string>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "workload/value_curve.hpp"

namespace greensched::workload {

using common::Flops;
using common::Seconds;
using common::TaskId;

/// Number of SLA tiers (0 = best-effort .. 3 = gold); `sla/tier.hpp`
/// names them.  Lives here so the task model can bound-check without
/// depending on the sla subsystem.
inline constexpr unsigned kSlaTierCount = 4;

struct TaskSpec {
  std::string service = "cpu-bound";  ///< DIET service name this task needs
  Flops work{0.0};                    ///< n_i, FLOPs to perform
  unsigned cores = 1;                 ///< cores occupied while running

  // --- SLA contract (defaults = best-effort, revenue-free: the legacy
  // task, bit-identical through every pre-SLA code path) ---
  /// Completion deadline, seconds after submission (0 = none).
  double deadline_seconds = 0.0;
  /// SLA tier index, 0 (best-effort) .. kSlaTierCount-1 (gold).
  unsigned sla_tier = 0;
  /// Revenue as a function of completion time; empty = no revenue.
  ValueCurve value;

  /// True when any SLA field departs from the best-effort default.
  [[nodiscard]] bool has_sla() const noexcept {
    return deadline_seconds > 0.0 || sla_tier != 0 || !value.empty();
  }

  void validate() const;
};

/// The paper's benchmark task (1e8 successive additions), scaled to our
/// machine models so that ~10 tasks/core produce a makespan of the order
/// reported in Table II.
[[nodiscard]] TaskSpec paper_cpu_bound_task();

/// One submitted task instance.
struct TaskInstance {
  TaskId id{};
  TaskSpec spec;
  Seconds submit_time{0.0};
  double user_preference = 0.0;  ///< Preference_user in [-0.9, 0.9]
};

}  // namespace greensched::workload
