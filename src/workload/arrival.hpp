// Arrival processes: when tasks reach the middleware.
//
// The paper's workload has "a burst phase, when the client submits r
// simultaneous requests and a continuous phase when the client submits
// requests at an arbitrary rate of two requests/second".
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace greensched::workload {

using common::Seconds;

/// Generates submission timestamps for a fixed number of tasks.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Returns `count` non-decreasing timestamps starting at `start`.
  [[nodiscard]] virtual std::vector<Seconds> generate(std::size_t count, Seconds start,
                                                      common::Rng& rng) const = 0;
};

/// All tasks at the same instant.
class BurstArrival final : public ArrivalProcess {
 public:
  [[nodiscard]] std::vector<Seconds> generate(std::size_t count, Seconds start,
                                              common::Rng& rng) const override;
};

/// Deterministic fixed rate (requests per second).
class FixedRateArrival final : public ArrivalProcess {
 public:
  explicit FixedRateArrival(double requests_per_second);
  [[nodiscard]] std::vector<Seconds> generate(std::size_t count, Seconds start,
                                              common::Rng& rng) const override;
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Poisson process with the given mean rate.
class PoissonArrival final : public ArrivalProcess {
 public:
  explicit PoissonArrival(double requests_per_second);
  [[nodiscard]] std::vector<Seconds> generate(std::size_t count, Seconds start,
                                              common::Rng& rng) const override;
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// The paper's two-phase workload: `burst_size` requests at `start`, then
/// the remainder at a continuous fixed rate.
class BurstThenContinuousArrival final : public ArrivalProcess {
 public:
  BurstThenContinuousArrival(std::size_t burst_size, double requests_per_second);
  [[nodiscard]] std::vector<Seconds> generate(std::size_t count, Seconds start,
                                              common::Rng& rng) const override;
  [[nodiscard]] std::size_t burst_size() const noexcept { return burst_size_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  std::size_t burst_size_;
  double rate_;
};

}  // namespace greensched::workload
