#include "common/spec.hpp"

#include <stdexcept>

#include "common/error.hpp"

namespace greensched::common {

std::string spec_base_name(const std::string& spec) {
  return spec.substr(0, spec.find(':'));
}

ParsedSpec parse_spec(const std::string& spec, const std::string& what) {
  ParsedSpec parsed;
  const std::size_t colon = spec.find(':');
  parsed.name = spec.substr(0, colon);
  if (colon == std::string::npos) return parsed;
  const std::string rest = spec.substr(colon + 1);
  std::size_t start = 0;
  while (start <= rest.size()) {
    const std::size_t comma = rest.find(',', start);
    const std::string token =
        rest.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw ConfigError(what + " '" + parsed.name + "': option '" + token +
                          "' is not key=value");
      }
      parsed.options.push_back(SpecOption{token.substr(0, eq), token.substr(eq + 1)});
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parsed;
}

double spec_double(const SpecOption& option, const std::string& name,
                   const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(option.value, &consumed);
    if (consumed != option.value.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw ConfigError(what + " '" + name + "': option " + option.key + "='" + option.value +
                      "' is not a number");
  }
}

std::size_t spec_count(const SpecOption& option, const std::string& name,
                       const std::string& what) {
  const double value = spec_double(option, name, what);
  if (value < 0.0 || value != static_cast<double>(static_cast<std::size_t>(value))) {
    throw ConfigError(what + " '" + name + "': option " + option.key +
                      " must be a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

double spec_fraction(const SpecOption& option, const std::string& name,
                     const std::string& what) {
  const double value = spec_double(option, name, what);
  if (value < 0.0 || value > 1.0) {
    throw ConfigError(what + " '" + name + "': option " + option.key +
                      " must be a fraction in [0, 1]");
  }
  return value;
}

void unknown_spec_option(const SpecOption& option, const std::string& name,
                         const std::string& what, const char* known) {
  throw ConfigError(what + " '" + name + "': unknown option '" + option.key +
                    "' (known: " + known + ")");
}

}  // namespace greensched::common
