// Minimal leveled logger.
//
// The simulator is mostly silent; logging exists for the examples and for
// debugging experiment runs.  The logger is deliberately simple: a global
// level, an output stream, and printf-free streaming via std::format-style
// helpers would be overkill here.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace greensched::common {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;
/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; throws on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view text);

/// Process-wide leveled logger.  Thread-safe: `enabled()` is called from
/// concurrent experiment runs (GS_LOG's guard), so the level is atomic;
/// emission serialises on a mutex.  A run that wants its own log stream
/// installs a *thread-local* sink (`set_thread_sink`), which takes
/// precedence over the shared sink and needs no locking.
class Logger {
 public:
  /// Process-wide logger used by GS_LOG macros.
  static Logger& global();

  void set_level(LogLevel level) noexcept { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Route output somewhere else (default: stderr).  Not owned.  Shared
  /// by every thread without a thread sink.
  void set_sink(std::ostream* sink) noexcept;

  /// Route *this thread's* output somewhere else (nullptr restores the
  /// shared sink).  Not owned; the caller keeps the stream alive while
  /// installed.  This is how concurrent sweep runs keep per-run logs.
  static void set_thread_sink(std::ostream* sink) noexcept;
  [[nodiscard]] static std::ostream* thread_sink() noexcept;

  /// Emit one formatted line: "[level] [component] message".
  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::ostream* sink_ = nullptr;
  std::mutex mutex_;
};

/// RAII guard installing a thread-local log sink for the current scope
/// (one experiment run, typically).
class ScopedThreadLogSink {
 public:
  explicit ScopedThreadLogSink(std::ostream& sink) : previous_(Logger::thread_sink()) {
    Logger::set_thread_sink(&sink);
  }
  ~ScopedThreadLogSink() { Logger::set_thread_sink(previous_); }
  ScopedThreadLogSink(const ScopedThreadLogSink&) = delete;
  ScopedThreadLogSink& operator=(const ScopedThreadLogSink&) = delete;

 private:
  std::ostream* previous_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogLine() { Logger::global().log(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace greensched::common

#define GS_LOG(level, component)                                            \
  if (!::greensched::common::Logger::global().enabled(level)) {            \
  } else                                                                    \
    ::greensched::common::detail::LogLine(level, component)

#define GS_LOG_DEBUG(component) GS_LOG(::greensched::common::LogLevel::kDebug, component)
#define GS_LOG_INFO(component) GS_LOG(::greensched::common::LogLevel::kInfo, component)
#define GS_LOG_WARN(component) GS_LOG(::greensched::common::LogLevel::kWarn, component)
#define GS_LOG_ERROR(component) GS_LOG(::greensched::common::LogLevel::kError, component)
