#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace greensched::common {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size())
    throw std::invalid_argument("TextTable: row has more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::grouped(long long v) {
  std::string digits = integer(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c];
      os << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << '|' << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace greensched::common
