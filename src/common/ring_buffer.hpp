// Fixed-capacity ring buffer.
//
// The Omegawatt-style wattmeter averages "more than 6,000 measurements"
// (Section IV); this buffer holds that sliding window of samples.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace greensched::common {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer: capacity must be positive");
  }

  void push(const T& value) {
    data_[head_] = value;
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) ++size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == data_.size(); }

  /// Element i, with 0 the oldest retained sample.
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer::at");
    const std::size_t start = full() ? head_ : 0;
    return data_[(start + i) % data_.size()];
  }

  [[nodiscard]] const T& newest() const { return at(size_ - 1); }
  [[nodiscard]] const T& oldest() const { return at(0); }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Applies f to every retained element, oldest first.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(at(i));
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace greensched::common
