#include "common/csv.hpp"

#include <cstdio>

namespace greensched::common {

std::string CsvWriter::escape(std::string_view field, char separator) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == separator || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) cell(c);
  end_row();
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
  for (auto c : cells) cell(c);
  end_row();
}

CsvWriter& CsvWriter::cell(std::string_view text) {
  if (row_open_) out_ << separator_;
  out_ << escape(text, separator_);
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return cell(std::string_view(buf));
}

CsvWriter& CsvWriter::cell(std::size_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", value);
  return cell(std::string_view(buf));
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_open_ = false;
  ++rows_;
}

}  // namespace greensched::common
