// Readers-writer lock with writer preference.
//
// The paper's provisioning planning is "a shared XML file using a
// readers-writers lock" (Section IV-C / Fig. 8).  We implement the lock
// explicitly (rather than aliasing std::shared_mutex) so its behaviour —
// writer preference, and counters that tests and micro-benchmarks can
// observe — is part of the reproduced system.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace greensched::common {

class ReadersWriterLock {
 public:
  ReadersWriterLock() = default;
  ReadersWriterLock(const ReadersWriterLock&) = delete;
  ReadersWriterLock& operator=(const ReadersWriterLock&) = delete;

  void lock_shared();
  void unlock_shared();
  void lock();
  void unlock();
  /// Non-blocking variants.
  bool try_lock_shared();
  bool try_lock();

  // BasicLockable-compatible aliases so std::shared_lock / std::unique_lock
  // work directly.

  /// Total shared acquisitions so far (monotonic, approximate under races).
  [[nodiscard]] std::uint64_t shared_acquisitions() const noexcept { return shared_acquisitions_; }
  /// Total exclusive acquisitions so far.
  [[nodiscard]] std::uint64_t exclusive_acquisitions() const noexcept {
    return exclusive_acquisitions_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable readers_cv_;
  std::condition_variable writers_cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
  std::uint64_t shared_acquisitions_ = 0;
  std::uint64_t exclusive_acquisitions_ = 0;
};

/// RAII shared (read) guard.
class ReadGuard {
 public:
  explicit ReadGuard(ReadersWriterLock& lock) : lock_(lock) { lock_.lock_shared(); }
  ~ReadGuard() { lock_.unlock_shared(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  ReadersWriterLock& lock_;
};

/// RAII exclusive (write) guard.
class WriteGuard {
 public:
  explicit WriteGuard(ReadersWriterLock& lock) : lock_(lock) { lock_.lock(); }
  ~WriteGuard() { lock_.unlock(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  ReadersWriterLock& lock_;
};

}  // namespace greensched::common
