#include "common/cli.hpp"

#include <charconv>

namespace greensched::common {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

CliArgs CliArgs::parse(const std::vector<std::string>& tokens) {
  CliArgs args;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) != 0) {
      args.positional_.push_back(token);
      continue;
    }
    std::string key = token.substr(2);
    if (key.empty()) throw ConfigError("CliArgs: bare '--' is not a valid option");
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      args.options_[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another flag (then boolean).
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      args.options_[key] = tokens[i + 1];
      ++i;
    } else {
      args.options_[key] = "true";
    }
  }
  return args;
}

bool CliArgs::has(const std::string& key) const noexcept {
  queried_[key] = true;
  return options_.contains(key);
}

std::optional<std::string> CliArgs::get(const std::string& key) const {
  queried_[key] = true;
  auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key, const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  double out = 0.0;
  auto [ptr, ec] = std::from_chars(value->data(), value->data() + value->size(), out);
  if (ec != std::errc{} || ptr != value->data() + value->size())
    throw ConfigError("CliArgs: --" + key + " expects a number, got '" + *value + "'");
  return out;
}

long long CliArgs::get_int(const std::string& key, long long fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  long long out = 0;
  auto [ptr, ec] = std::from_chars(value->data(), value->data() + value->size(), out);
  if (ec != std::errc{} || ptr != value->data() + value->size())
    throw ConfigError("CliArgs: --" + key + " expects an integer, got '" + *value + "'");
  return out;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes" || *value == "on") return true;
  if (*value == "false" || *value == "0" || *value == "no" || *value == "off") return false;
  throw ConfigError("CliArgs: --" + key + " expects a boolean, got '" + *value + "'");
}

std::vector<std::string> CliArgs::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) {
    if (!queried_.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace greensched::common
