// Spec strings: the "name:key=value,key=value,..." mini-grammar shared
// by every spec-style knob (--provisioner, --workload sla:, --sla-policy).
//
// One parser, one error-message shape: every consumer reports problems as
//   <what> '<name>': ...
// so a CLI user sees the same diagnostics whichever flag was misspelled,
// and the CLI maps any ConfigError thrown here to usage exit code 2.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace greensched::common {

/// One "key=value" token of a spec string.
struct SpecOption {
  std::string key;
  std::string value;
};

/// A parsed spec: the part before the first ':' plus the option list.
struct ParsedSpec {
  std::string name;
  std::vector<SpecOption> options;
};

/// The name part of `spec` ("delayed-off:delay=9" -> "delayed-off").
[[nodiscard]] std::string spec_base_name(const std::string& spec);

/// Splits "name:k=v,k=v" into name + options.  `what` names the flag
/// family in diagnostics (e.g. "provisioning strategy", "sla policy");
/// throws ConfigError on tokens that are not key=value.
[[nodiscard]] ParsedSpec parse_spec(const std::string& spec, const std::string& what);

/// Option value as a double; throws ConfigError ("<what> '<name>':
/// option k='v' is not a number") on junk.
[[nodiscard]] double spec_double(const SpecOption& option, const std::string& name,
                                 const std::string& what);

/// Option value as a non-negative integer count.
[[nodiscard]] std::size_t spec_count(const SpecOption& option, const std::string& name,
                                     const std::string& what);

/// Option value as a fraction in [0, 1].
[[nodiscard]] double spec_fraction(const SpecOption& option, const std::string& name,
                                   const std::string& what);

/// Rejects an unrecognized option, listing the known keys.
[[noreturn]] void unknown_spec_option(const SpecOption& option, const std::string& name,
                                      const std::string& what, const char* known);

}  // namespace greensched::common
