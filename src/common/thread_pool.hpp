// Fixed-size worker pool with a bounded submission queue.
//
// The experiment engine fans independent simulation runs out over this
// pool (`metrics::SweepRunner`, `metrics::run_replicated`).  Design
// constraints, in order:
//   * determinism is the caller's job — the pool guarantees only that
//     every submitted task runs exactly once and its result (or
//     exception) is observable through the returned future;
//   * the queue is bounded so a producer enumerating a huge sweep grid
//     cannot balloon memory: `submit` blocks once `queue_capacity`
//     tasks are waiting;
//   * the destructor drains — every task submitted before destruction
//     runs to completion before the workers join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace greensched::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads (>= 1, else ConfigError).  `queue_capacity`
  /// bounds the number of *waiting* tasks; `submit` blocks when full.
  explicit ThreadPool(std::size_t workers, std::size_t queue_capacity = 1024);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue (all submitted tasks complete), then joins.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const;

  /// Schedules `fn` and returns a future carrying its result or
  /// exception.  Blocks while the queue is at capacity; throws
  /// StateError after shutdown began.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> future = task.get_future();
    enqueue(Job(std::move(task)));
    return future;
  }

  /// A sensible worker count for CPU-bound simulation runs.
  [[nodiscard]] static std::size_t default_worker_count() noexcept;

 private:
  /// Move-only type-erased callable (std::function requires copyable;
  /// packaged_task is not).
  class Job {
   public:
    Job() = default;
    template <typename F>
    explicit Job(F&& fn)
        : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(fn))) {}
    void operator()() { impl_->call(); }
    [[nodiscard]] explicit operator bool() const noexcept { return impl_ != nullptr; }

   private:
    struct Concept {
      virtual ~Concept() = default;
      virtual void call() = 0;
    };
    template <typename F>
    struct Model final : Concept {
      explicit Model(F f) : fn(std::move(f)) {}
      void call() override { fn(); }
      F fn;
    };
    std::unique_ptr<Concept> impl_;
  };

  void enqueue(Job job);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Job> queue_;
  std::size_t capacity_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Applies `fn` to every element of [first, last) on the pool and waits
/// for all of them.  Exceptions propagate: the first failing element (in
/// iteration order) rethrows after every task has finished running.
template <typename Iterator, typename F>
void parallel_for_each(ThreadPool& pool, Iterator first, Iterator last, F&& fn) {
  std::vector<std::future<void>> futures;
  for (Iterator it = first; it != last; ++it) {
    futures.push_back(pool.submit([&fn, it] { fn(*it); }));
  }
  std::exception_ptr error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

/// Container convenience overload.
template <typename Container, typename F>
void parallel_for_each(ThreadPool& pool, Container& items, F&& fn) {
  parallel_for_each(pool, std::begin(items), std::end(items), std::forward<F>(fn));
}

}  // namespace greensched::common
