// Strong unit types for the quantities the scheduler reasons about.
//
// The paper's model mixes watts, joules, FLOP counts and seconds in the
// score and cost equations (Eqs. 4-6).  Using tagged wrappers instead of
// bare doubles makes it a compile error to, e.g., pass a power where an
// energy is expected, while remaining zero-overhead (a single double).
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>
#include <string>

namespace greensched::common {

/// CRTP-free tagged quantity: one double with explicit construction.
/// Tag types are never instantiated; they only disambiguate the template.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double v) noexcept : value_(v) {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  constexpr auto operator<=>(const Quantity&) const noexcept = default;

  constexpr Quantity operator+(Quantity o) const noexcept { return Quantity(value_ + o.value_); }
  constexpr Quantity operator-(Quantity o) const noexcept { return Quantity(value_ - o.value_); }
  constexpr Quantity operator-() const noexcept { return Quantity(-value_); }
  constexpr Quantity operator*(double k) const noexcept { return Quantity(value_ * k); }
  constexpr Quantity operator/(double k) const noexcept { return Quantity(value_ / k); }
  /// Ratio of two like quantities is a dimensionless double.
  constexpr double operator/(Quantity o) const noexcept { return value_ / o.value_; }

  constexpr Quantity& operator+=(Quantity o) noexcept { value_ += o.value_; return *this; }
  constexpr Quantity& operator-=(Quantity o) noexcept { value_ -= o.value_; return *this; }
  constexpr Quantity& operator*=(double k) noexcept { value_ *= k; return *this; }
  constexpr Quantity& operator/=(double k) noexcept { value_ /= k; return *this; }

 private:
  double value_ = 0.0;
};

template <typename Tag>
constexpr Quantity<Tag> operator*(double k, Quantity<Tag> q) noexcept {
  return q * k;
}

struct WattsTag {};
struct JoulesTag {};
struct FlopsTag {};       // a count of floating-point operations
struct FlopsRateTag {};   // FLOP/s
struct SecondsTag {};
struct CelsiusTag {};

/// Instantaneous electrical power.
using Watts = Quantity<WattsTag>;
/// Energy.
using Joules = Quantity<JoulesTag>;
/// Amount of floating-point work (operation count).
using Flops = Quantity<FlopsTag>;
/// Compute speed in FLOP per second.
using FlopsRate = Quantity<FlopsRateTag>;
/// Duration or simulated timestamp, in seconds.
using Seconds = Quantity<SecondsTag>;
/// Temperature.
using Celsius = Quantity<CelsiusTag>;

// --- dimensional arithmetic ------------------------------------------------

/// power x time = energy
constexpr Joules operator*(Watts p, Seconds t) noexcept { return Joules(p.value() * t.value()); }
constexpr Joules operator*(Seconds t, Watts p) noexcept { return p * t; }
/// energy / time = power
constexpr Watts operator/(Joules e, Seconds t) noexcept { return Watts(e.value() / t.value()); }
/// energy / power = time
constexpr Seconds operator/(Joules e, Watts p) noexcept { return Seconds(e.value() / p.value()); }
/// work / speed = time
constexpr Seconds operator/(Flops n, FlopsRate f) noexcept { return Seconds(n.value() / f.value()); }
/// speed x time = work
constexpr Flops operator*(FlopsRate f, Seconds t) noexcept { return Flops(f.value() * t.value()); }
constexpr Flops operator*(Seconds t, FlopsRate f) noexcept { return f * t; }
/// work / time = speed
constexpr FlopsRate operator/(Flops n, Seconds t) noexcept { return FlopsRate(n.value() / t.value()); }

// --- convenience literal-style factories ------------------------------------

constexpr Watts watts(double v) noexcept { return Watts(v); }
constexpr Joules joules(double v) noexcept { return Joules(v); }
constexpr Joules kilojoules(double v) noexcept { return Joules(v * 1e3); }
constexpr Joules megajoules(double v) noexcept { return Joules(v * 1e6); }
constexpr Flops flops(double v) noexcept { return Flops(v); }
constexpr Flops gigaflops(double v) noexcept { return Flops(v * 1e9); }
constexpr FlopsRate flops_per_sec(double v) noexcept { return FlopsRate(v); }
constexpr FlopsRate gflops_per_sec(double v) noexcept { return FlopsRate(v * 1e9); }
constexpr Seconds seconds(double v) noexcept { return Seconds(v); }
constexpr Seconds minutes(double v) noexcept { return Seconds(v * 60.0); }
constexpr Seconds hours(double v) noexcept { return Seconds(v * 3600.0); }
constexpr Celsius celsius(double v) noexcept { return Celsius(v); }

/// Watt-hours, common in energy reporting.
constexpr Joules watt_hours(double v) noexcept { return Joules(v * 3600.0); }
constexpr double to_watt_hours(Joules e) noexcept { return e.value() / 3600.0; }

std::ostream& operator<<(std::ostream& os, Watts w);
std::ostream& operator<<(std::ostream& os, Joules j);
std::ostream& operator<<(std::ostream& os, Seconds s);
std::ostream& operator<<(std::ostream& os, FlopsRate f);
std::ostream& operator<<(std::ostream& os, Celsius c);

/// Human-readable formatting with unit suffix ("1.25 MJ", "230 W", ...).
std::string to_string(Watts w);
std::string to_string(Joules j);
std::string to_string(Seconds s);
std::string to_string(FlopsRate f);
std::string to_string(Celsius c);

}  // namespace greensched::common
