#include "common/rw_lock.hpp"

namespace greensched::common {

void ReadersWriterLock::lock_shared() {
  std::unique_lock lock(mutex_);
  // Writer preference: readers wait while a writer is active *or waiting*,
  // so a stream of readers cannot starve the provisioner's plan updates.
  readers_cv_.wait(lock, [&] { return !writer_active_ && waiting_writers_ == 0; });
  ++active_readers_;
  ++shared_acquisitions_;
}

void ReadersWriterLock::unlock_shared() {
  std::unique_lock lock(mutex_);
  if (--active_readers_ == 0 && waiting_writers_ > 0) {
    writers_cv_.notify_one();
  }
}

void ReadersWriterLock::lock() {
  std::unique_lock lock(mutex_);
  ++waiting_writers_;
  writers_cv_.wait(lock, [&] { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
  ++exclusive_acquisitions_;
}

void ReadersWriterLock::unlock() {
  std::unique_lock lock(mutex_);
  writer_active_ = false;
  if (waiting_writers_ > 0) {
    writers_cv_.notify_one();
  } else {
    readers_cv_.notify_all();
  }
}

bool ReadersWriterLock::try_lock_shared() {
  std::unique_lock lock(mutex_);
  if (writer_active_ || waiting_writers_ > 0) return false;
  ++active_readers_;
  ++shared_acquisitions_;
  return true;
}

bool ReadersWriterLock::try_lock() {
  std::unique_lock lock(mutex_);
  if (writer_active_ || active_readers_ > 0) return false;
  writer_active_ = true;
  ++exclusive_acquisitions_;
  return true;
}

}  // namespace greensched::common
