// CSV output for benchmark data series (figures are plotted from these).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace greensched::common {

/// Streams RFC-4180-style CSV: fields containing separators, quotes or
/// newlines are quoted, embedded quotes doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char separator = ',')
      : out_(out), separator_(separator) {}

  /// Writes one row; each cell is escaped as needed.
  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<std::string_view> cells);

  /// Cell-by-cell interface.
  CsvWriter& cell(std::string_view text);
  CsvWriter& cell(double value);
  CsvWriter& cell(std::size_t value);
  void end_row();

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  static std::string escape(std::string_view field, char separator = ',');

 private:
  std::ostream& out_;
  char separator_;
  bool row_open_ = false;
  std::size_t rows_ = 0;
};

}  // namespace greensched::common
