#include "common/ids.hpp"

#include <ostream>

namespace greensched::common {

namespace {
template <typename Tag>
std::ostream& print(std::ostream& os, Id<Tag> id, const char* prefix) {
  if (!id.valid()) return os << prefix << "<invalid>";
  return os << prefix << id.value();
}
}  // namespace

template <>
std::ostream& operator<< <NodeTag>(std::ostream& os, NodeId id) {
  return print(os, id, "node-");
}
template <>
std::ostream& operator<< <TaskTag>(std::ostream& os, TaskId id) {
  return print(os, id, "task-");
}
template <>
std::ostream& operator<< <RequestTag>(std::ostream& os, RequestId id) {
  return print(os, id, "req-");
}
template <>
std::ostream& operator<< <ClusterTag>(std::ostream& os, ClusterId id) {
  return print(os, id, "cluster-");
}
template <>
std::ostream& operator<< <AgentTag>(std::ostream& os, AgentId id) {
  return print(os, id, "agent-");
}
template <>
std::ostream& operator<< <ServiceTag>(std::ostream& os, ServiceId id) {
  return print(os, id, "svc-");
}

}  // namespace greensched::common
