// Fixed-width text table used by the benchmark harnesses to print the
// paper's tables/series in a readable form.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace greensched::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; it may have fewer cells than there are headers (padded).
  /// Extra cells throw.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  /// "x,xxx,xxx" thousands-separated integer, as in Table II of the paper.
  static std::string grouped(long long v);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders the table with a header separator line.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace greensched::common
