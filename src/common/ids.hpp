// Strongly-typed integer identifiers.
//
// Nodes, tasks, requests and clusters are all indexed by small integers in
// the simulator; distinct wrapper types stop them from being mixed up.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>

namespace greensched::common {

template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint64_t;
  static constexpr underlying_type kInvalid = std::numeric_limits<underlying_type>::max();

  constexpr Id() noexcept = default;
  constexpr explicit Id(underlying_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  constexpr auto operator<=>(const Id&) const noexcept = default;

  static constexpr Id invalid() noexcept { return Id(); }

 private:
  underlying_type value_ = kInvalid;
};

struct NodeTag {};
struct TaskTag {};
struct RequestTag {};
struct ClusterTag {};
struct AgentTag {};
struct ServiceTag {};

using NodeId = Id<NodeTag>;
using TaskId = Id<TaskTag>;
using RequestId = Id<RequestTag>;
using ClusterId = Id<ClusterTag>;
using AgentId = Id<AgentTag>;
using ServiceId = Id<ServiceTag>;

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id);

/// Monotonic id generator; not thread-safe (the DES is single-threaded).
template <typename IdType>
class IdAllocator {
 public:
  IdType next() noexcept { return IdType(next_++); }
  [[nodiscard]] std::uint64_t allocated() const noexcept { return next_; }
  void reset() noexcept { next_ = 0; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace greensched::common

template <typename Tag>
struct std::hash<greensched::common::Id<Tag>> {
  std::size_t operator()(greensched::common::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
