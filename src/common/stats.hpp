// Streaming statistics helpers used by the wattmeter, energy accounting
// and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace greensched::common {

/// Welford online mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin and are counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Exact-percentile sample set (stores all values; fine at our scales).
class Percentiles {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  /// Linear-interpolated percentile, p in [0, 100].  Requires samples.
  [[nodiscard]] double percentile(double p);
  [[nodiscard]] double median() { return percentile(50.0); }

 private:
  void ensure_sorted();
  std::vector<double> values_;
  bool sorted_ = true;
};

/// (time, value) series with integration and window averaging — the shape
/// of wattmeter output and of the Fig. 9 timeline.
class TimeSeries {
 public:
  void add(double t, double v);
  [[nodiscard]] std::size_t size() const noexcept { return ts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ts_.empty(); }
  [[nodiscard]] double time_at(std::size_t i) const { return ts_.at(i); }
  [[nodiscard]] double value_at(std::size_t i) const { return vs_.at(i); }

  /// Trapezoidal integral of the series over its full span.
  [[nodiscard]] double integrate() const noexcept;
  /// Average value over [t0, t1] by trapezoidal integration; returns 0 for
  /// an empty window.
  [[nodiscard]] double window_average(double t0, double t1) const noexcept;
  /// Last value at or before t (step interpolation); 0 if none.
  [[nodiscard]] double value_before(double t) const noexcept;

  [[nodiscard]] const std::vector<double>& times() const noexcept { return ts_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return vs_; }

 private:
  std::vector<double> ts_;
  std::vector<double> vs_;
};

}  // namespace greensched::common
