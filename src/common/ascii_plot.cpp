#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace greensched::common {

std::string ascii_plot(const std::vector<double>& xs, const std::vector<double>& ys,
                       const AsciiPlotOptions& options) {
  if (xs.size() != ys.size()) throw std::invalid_argument("ascii_plot: size mismatch");
  if (xs.empty()) throw std::invalid_argument("ascii_plot: empty series");
  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 4);

  double xmin = xs[0], xmax = xs[0], ymin = ys[0], ymax = ys[0];
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xmin = std::min(xmin, xs[i]);
    xmax = std::max(xmax, xs[i]);
    ymin = std::min(ymin, ys[i]);
    ymax = std::max(ymax, ys[i]);
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(h, std::string(w, ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    auto cx = static_cast<std::size_t>((xs[i] - xmin) / (xmax - xmin) * static_cast<double>(w - 1));
    auto cy = static_cast<std::size_t>((ys[i] - ymin) / (ymax - ymin) * static_cast<double>(h - 1));
    grid[h - 1 - cy][cx] = '*';
  }

  std::ostringstream os;
  if (!options.label.empty()) os << options.label << '\n';
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10.3g ", ymax);
  os << buf << '+' << std::string(w, '-') << "+\n";
  for (std::size_t r = 0; r < h; ++r) {
    os << std::string(11, ' ') << '|' << grid[r] << "|\n";
  }
  std::snprintf(buf, sizeof(buf), "%10.3g ", ymin);
  os << buf << '+' << std::string(w, '-') << "+\n";
  std::snprintf(buf, sizeof(buf), "%.6g", xmin);
  std::string left(buf);
  std::snprintf(buf, sizeof(buf), "%.6g", xmax);
  std::string right(buf);
  os << std::string(12, ' ') << left;
  if (left.size() + right.size() < w) os << std::string(w - left.size() - right.size(), ' ');
  os << right << '\n';
  return os.str();
}

std::string ascii_bars(const std::vector<std::pair<std::string, double>>& bars,
                       std::size_t width) {
  if (bars.empty()) return "";
  std::size_t label_width = 0;
  double vmax = 0.0;
  for (const auto& [label, value] : bars) {
    label_width = std::max(label_width, label.size());
    vmax = std::max(vmax, value);
  }
  if (vmax <= 0.0) vmax = 1.0;

  std::ostringstream os;
  for (const auto& [label, value] : bars) {
    os << label << std::string(label_width - label.size(), ' ') << " |";
    const auto n = static_cast<std::size_t>(std::lround(value / vmax * static_cast<double>(width)));
    os << std::string(n, '#');
    char buf[48];
    std::snprintf(buf, sizeof(buf), " %.6g\n", value);
    os << buf;
  }
  return os.str();
}

}  // namespace greensched::common
