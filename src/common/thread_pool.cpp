#include "common/thread_pool.hpp"

#include <algorithm>

namespace greensched::common {

ThreadPool::ThreadPool(std::size_t workers, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  if (workers == 0) throw ConfigError("ThreadPool: need at least one worker");
  if (queue_capacity == 0) throw ConfigError("ThreadPool: queue capacity must be positive");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::enqueue(Job job) {
  {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return queue_.size() < capacity_ || stopping_; });
    if (stopping_) throw StateError("ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(job));
  }
  not_empty_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      // Drain-on-shutdown: only exit once the queue is empty.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    job();  // packaged_task routes any exception into the future
  }
}

std::size_t ThreadPool::default_worker_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

}  // namespace greensched::common
