// Exception hierarchy for the library.  Construction/configuration errors
// throw; hot-path scheduling code is noexcept and reports via status values.
#pragma once

#include <stdexcept>
#include <string>

namespace greensched::common {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Invalid user-supplied configuration (bad node spec, bad preference...).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Malformed input data (XML planning file, trace file...).
class ParseError : public Error {
 public:
  ParseError(const std::string& message, std::size_t line, std::size_t column)
      : Error(message + " (line " + std::to_string(line) + ", column " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Violation of an internal protocol (e.g. scheduling a task on an OFF node).
class StateError : public Error {
 public:
  using Error::Error;
};

/// Environment I/O failure (file unreadable, directory missing, disk
/// full...).  Distinct from ParseError — the *content* was never the
/// problem — so callers (notably the CLI, exit code 3) can react
/// differently.  Carries the offending path.
class IoError : public Error {
 public:
  IoError(const std::string& message, std::string path)
      : Error(message + ": " + path), path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace greensched::common
