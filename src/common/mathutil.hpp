// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>

namespace greensched::common {

/// Linear interpolation: a at t=0, b at t=1.
constexpr double lerp(double a, double b, double t) noexcept { return a + (b - a) * t; }

/// Clamp to [lo, hi].
constexpr double clamp(double v, double lo, double hi) noexcept {
  return std::min(std::max(v, lo), hi);
}

/// Relative/absolute tolerance comparison for doubles.
inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) noexcept {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// Percentage change from `base` to `value` ((value-base)/base * 100).
inline double percent_change(double base, double value) noexcept {
  if (base == 0.0) return 0.0;
  return (value - base) / base * 100.0;
}

/// Integer floor of a fraction of n (the paper's "20% of all nodes" rules
/// floor: 20% of 12 nodes = 2 candidates).
constexpr std::size_t fraction_floor(std::size_t n, double fraction) noexcept {
  const double scaled = static_cast<double>(n) * fraction;
  return scaled <= 0.0 ? 0 : static_cast<std::size_t>(scaled);
}

}  // namespace greensched::common
