// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (RANDOM policy, arrival jitter,
// per-node power heterogeneity) flows through this generator so that every
// experiment is reproducible from a single seed.  xoshiro256** is used for
// speed and statistical quality; splitmix64 seeds it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace greensched::common {

/// splitmix64: used to expand one 64-bit seed into a full xoshiro state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next_u64(); }
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;
  /// Index in [0, n); requires n > 0.
  std::size_t index(std::size_t n) noexcept;
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Exponential with given rate lambda (> 0); mean 1/lambda.
  double exponential(double lambda) noexcept;
  /// Weibull with shape k (> 0) and scale lambda (> 0) by inverse
  /// transform; k = 1 reduces to exponential(1/lambda).  The workhorse of
  /// failure-trace modelling: k < 1 gives infant-mortality-heavy
  /// inter-failure times, k > 1 wear-out-dominated ones.
  double weibull(double shape, double scale) noexcept;
  /// Weibull re-parameterized by its *mean* instead of its scale, so MTBF
  /// specs translate directly: scale = mean / Gamma(1 + 1/shape).
  double weibull_mean(double shape, double mean) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent generator (for per-node streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace greensched::common
