#include "common/logging.hpp"

#include <iostream>
#include <stdexcept>

namespace greensched::common {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text) {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + std::string(text));
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

namespace {
thread_local std::ostream* t_thread_sink = nullptr;
}  // namespace

void Logger::set_sink(std::ostream* sink) noexcept {
  std::lock_guard lock(mutex_);
  sink_ = sink;
}

void Logger::set_thread_sink(std::ostream* sink) noexcept { t_thread_sink = sink; }

std::ostream* Logger::thread_sink() noexcept { return t_thread_sink; }

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  if (std::ostream* local = t_thread_sink) {
    // Per-thread sink: only this thread writes to it, no lock needed.
    *local << '[' << to_string(level) << "] [" << component << "] " << message << '\n';
    return;
  }
  std::lock_guard lock(mutex_);
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << '[' << to_string(level) << "] [" << component << "] " << message << '\n';
}

}  // namespace greensched::common
