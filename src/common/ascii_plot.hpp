// Tiny ASCII line/bar plotting for the figure benches, so the "series the
// paper plots" are visible directly in terminal output next to the CSV.
#pragma once

#include <string>
#include <vector>

namespace greensched::common {

struct AsciiPlotOptions {
  std::size_t width = 72;   ///< plot columns
  std::size_t height = 16;  ///< plot rows
  std::string label;        ///< printed above the plot
};

/// Renders y-vs-x as a scatter/step plot using '*' marks; axes are scaled
/// to the data range.  xs and ys must have equal, non-zero length.
[[nodiscard]] std::string ascii_plot(const std::vector<double>& xs, const std::vector<double>& ys,
                                     const AsciiPlotOptions& options = {});

/// Renders a horizontal bar chart (label, value) with proportional bars —
/// used for the per-node task-distribution figures.
[[nodiscard]] std::string ascii_bars(const std::vector<std::pair<std::string, double>>& bars,
                                     std::size_t width = 50);

}  // namespace greensched::common
