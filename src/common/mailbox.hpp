// Mailbox-style handoff primitives for the sharded serving engine.
//
// A Mailbox<T> is a small closable MPSC queue: the election driver posts
// work items to each shard worker's inbox and the worker blocks on
// receive() until a message or close() arrives.  A CountdownLatch is the
// matching completion barrier: the driver arms it with the number of
// outstanding shards and waits; each worker counts down when its slice is
// merged-ready.  Both are mutex+condvar based on purpose — the handoff
// happens once per election (not per candidate), so the cost is noise,
// and the lock gives TSan a visible happens-before edge for every byte
// the workers wrote into their per-shard arenas.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace greensched::common {

/// Closable blocking queue.  Senders post(), the receiver blocks in
/// receive() until an item arrives; close() wakes every waiter and makes
/// receive() return nullopt once the queue drains.  Post-after-close is
/// dropped (the worker is shutting down; there is nobody left to read).
template <typename T>
class Mailbox {
 public:
  /// Enqueues `item` and wakes one receiver.  Returns false (dropping the
  /// item) when the mailbox is closed.
  bool post(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item or close().  Returns nullopt only when the
  /// mailbox is closed *and* drained, so no posted item is ever lost.
  std::optional<T> receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking receive: an item if one is queued, nullopt otherwise
  /// (whether open or closed).
  std::optional<T> try_receive() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wakes all receivers; receive() drains remaining items then reports
  /// end-of-stream.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Reusable completion barrier: reset(n), n workers count_down(), one
/// waiter blocks in wait() until the count reaches zero.  Unlike
/// std::latch this one is reusable, which the serving engine needs once
/// per election round.
class CountdownLatch {
 public:
  /// Arms the latch for `count` completions.  Must not race with a
  /// pending wait (the engine resets strictly between rounds).
  void reset(std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    remaining_ = count;
  }

  void count_down() {
    bool release = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (remaining_ > 0) --remaining_;
      release = remaining_ == 0;
    }
    if (release) done_.notify_all();
  }

  /// Blocks until the armed count reaches zero (returns immediately when
  /// armed with zero).
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return remaining_ == 0; });
  }

  [[nodiscard]] std::size_t remaining() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return remaining_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable done_;
  std::size_t remaining_ = 0;
};

}  // namespace greensched::common
