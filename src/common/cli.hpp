// Minimal command-line argument parser for the tools and examples.
//
// Supports subcommand-style invocations:
//   greensched placement --policy POWER --seed 42 --csv out.csv
// with "--key value", "--key=value" and boolean "--flag" forms.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace greensched::common {

class CliArgs {
 public:
  /// Parses argv (excluding argv[0]).  Leading non-flag tokens become
  /// positional arguments; "--key value"/"--key=value" become options;
  /// a bare "--flag" followed by another flag (or nothing) is boolean.
  static CliArgs parse(int argc, const char* const* argv);
  static CliArgs parse(const std::vector<std::string>& tokens);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  /// First positional argument (the subcommand), or empty.
  [[nodiscard]] std::string command() const {
    return positional_.empty() ? std::string{} : positional_.front();
  }

  [[nodiscard]] bool has(const std::string& key) const noexcept;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& fallback) const;
  /// Typed getters; throw ConfigError on malformed values.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;

  /// Keys the program never queried (typo detection).  The program calls
  /// the getters first, then may warn on leftovers.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace greensched::common
