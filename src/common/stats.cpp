#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace greensched::common {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  std::size_t i;
  if (x < lo_) {
    ++underflow_;
    i = 0;
  } else if (x >= hi_) {
    ++overflow_;
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
  }
  ++counts_[i];
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }
double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Percentiles::percentile(double p) {
  if (values_.empty()) throw std::logic_error("Percentiles: no samples");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("Percentiles: p out of range");
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] + frac * (values_[lo + 1] - values_[lo]);
}

void Percentiles::ensure_sorted() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

void TimeSeries::add(double t, double v) {
  if (!ts_.empty() && t < ts_.back())
    throw std::invalid_argument("TimeSeries: timestamps must be non-decreasing");
  ts_.push_back(t);
  vs_.push_back(v);
}

double TimeSeries::integrate() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 1; i < ts_.size(); ++i) {
    acc += 0.5 * (vs_[i] + vs_[i - 1]) * (ts_[i] - ts_[i - 1]);
  }
  return acc;
}

double TimeSeries::window_average(double t0, double t1) const noexcept {
  if (ts_.empty() || t1 <= t0) return 0.0;
  // Clip the piecewise-linear series to [t0, t1] and integrate.
  double acc = 0.0;
  double covered = 0.0;
  for (std::size_t i = 1; i < ts_.size(); ++i) {
    double a = ts_[i - 1], b = ts_[i];
    if (b <= t0 || a >= t1) continue;
    double va = vs_[i - 1], vb = vs_[i];
    const double span = b - a;
    if (a < t0) {
      va = span > 0 ? va + (vb - va) * (t0 - a) / span : va;
      a = t0;
    }
    if (b > t1) {
      vb = span > 0 ? vs_[i - 1] + (vs_[i] - vs_[i - 1]) * (t1 - ts_[i - 1]) / span : vb;
      b = t1;
    }
    acc += 0.5 * (va + vb) * (b - a);
    covered += b - a;
  }
  return covered > 0.0 ? acc / covered : 0.0;
}

double TimeSeries::value_before(double t) const noexcept {
  double result = 0.0;
  for (std::size_t i = 0; i < ts_.size(); ++i) {
    if (ts_[i] > t) break;
    result = vs_[i];
  }
  return result;
}

}  // namespace greensched::common
