#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace greensched::common {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = -span % span;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

std::size_t Rng::index(std::size_t n) noexcept {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_int(0, n - 1));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::weibull(double shape, double scale) noexcept {
  assert(shape > 0.0 && scale > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::weibull_mean(double shape, double mean) noexcept {
  assert(shape > 0.0 && mean > 0.0);
  return weibull(shape, mean / std::tgamma(1.0 + 1.0 / shape));
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace greensched::common
