#include "common/units.hpp"

#include <cstdio>
#include <ostream>

namespace greensched::common {
namespace {

std::string scaled(double v, const char* base, const char* kilo, const char* mega) {
  char buf[64];
  double a = std::fabs(v);
  if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f %s", v / 1e6, mega);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f %s", v / 1e3, kilo);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f %s", v, base);
  }
  return buf;
}

}  // namespace

std::string to_string(Watts w) { return scaled(w.value(), "W", "kW", "MW"); }
std::string to_string(Joules j) { return scaled(j.value(), "J", "kJ", "MJ"); }
std::string to_string(FlopsRate f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f GFLOP/s", f.value() / 1e9);
  return buf;
}

std::string to_string(Seconds s) {
  char buf[64];
  double v = s.value();
  if (std::fabs(v) >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", v / 3600.0);
  } else if (std::fabs(v) >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2f min", v / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", v);
  }
  return buf;
}

std::string to_string(Celsius c) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f degC", c.value());
  return buf;
}

std::ostream& operator<<(std::ostream& os, Watts w) { return os << to_string(w); }
std::ostream& operator<<(std::ostream& os, Joules j) { return os << to_string(j); }
std::ostream& operator<<(std::ostream& os, Seconds s) { return os << to_string(s); }
std::ostream& operator<<(std::ostream& os, FlopsRate f) { return os << to_string(f); }
std::ostream& operator<<(std::ostream& os, Celsius c) { return os << to_string(c); }

}  // namespace greensched::common
