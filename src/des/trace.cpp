#include "des/trace.hpp"

#include <algorithm>

namespace greensched::des {

void TraceRecorder::record(SimTime time, std::string category, std::string subject,
                           std::string detail, double value) {
  if (capacity_ != 0 && records_.size() >= capacity_) {
    // Drop the oldest half in one move to amortize the cost.
    const std::size_t keep = capacity_ / 2;
    dropped_ += records_.size() - keep;
    records_.erase(records_.begin(), records_.end() - static_cast<std::ptrdiff_t>(keep));
  }
  records_.push_back(
      TraceRecord{time, std::move(category), std::move(subject), std::move(detail), value});
}

std::vector<TraceRecord> TraceRecorder::by_category(const std::string& category) const {
  std::vector<TraceRecord> out;
  std::copy_if(records_.begin(), records_.end(), std::back_inserter(out),
               [&](const TraceRecord& r) { return r.category == category; });
  return out;
}

std::vector<TraceRecord> TraceRecorder::by_subject(const std::string& category,
                                                   const std::string& subject) const {
  std::vector<TraceRecord> out;
  std::copy_if(records_.begin(), records_.end(), std::back_inserter(out),
               [&](const TraceRecord& r) { return r.category == category && r.subject == subject; });
  return out;
}

std::size_t TraceRecorder::count_if(const std::function<bool(const TraceRecord&)>& pred) const {
  return static_cast<std::size_t>(std::count_if(records_.begin(), records_.end(), pred));
}

}  // namespace greensched::des
