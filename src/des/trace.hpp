// Simulation trace: a queryable log of (time, category, subject, detail)
// records.  The figure benches and integration tests reconstruct timelines
// (task placement, candidate-pool changes) from this trace.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "des/simulator.hpp"

namespace greensched::des {

struct TraceRecord {
  SimTime time{0.0};
  std::string category;  ///< e.g. "task", "node", "provisioner"
  std::string subject;   ///< e.g. "taurus-2"
  std::string detail;    ///< free-form payload
  double value = 0.0;    ///< optional numeric payload
};

class TraceRecorder {
 public:
  void record(SimTime time, std::string category, std::string subject, std::string detail,
              double value = 0.0);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const TraceRecord& at(std::size_t i) const { return records_.at(i); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept { return records_; }

  /// All records in `category` (preserving time order).
  [[nodiscard]] std::vector<TraceRecord> by_category(const std::string& category) const;
  /// All records matching both category and subject.
  [[nodiscard]] std::vector<TraceRecord> by_subject(const std::string& category,
                                                    const std::string& subject) const;
  /// Count of records matching a predicate.
  [[nodiscard]] std::size_t count_if(const std::function<bool(const TraceRecord&)>& pred) const;

  void clear() noexcept { records_.clear(); }

  /// Keep memory bounded in very long simulations (0 = unlimited).
  void set_capacity(std::size_t capacity) noexcept { capacity_ = capacity; }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

 private:
  std::vector<TraceRecord> records_;
  std::size_t capacity_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace greensched::des
