#include "des/simulator.hpp"

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace greensched::des {

using greensched::common::StateError;

EventHandle Simulator::schedule_at(SimTime at, Callback fn) {
  if (at < now_) throw StateError("Simulator: cannot schedule in the past");
  if (!fn) throw StateError("Simulator: empty callback");
  const std::uint64_t id = next_id_++;
  queue_.push(QueueEntry{at.value(), next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_events_;
  return EventHandle(id);
}

EventHandle Simulator::schedule_after(SimDuration delay, Callback fn) {
  if (delay.value() < 0.0) throw StateError("Simulator: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle handle) noexcept {
  if (!handle.valid()) return false;
  auto it = callbacks_.find(handle.id());
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_events_;
  // The heap entry stays; execute()/step() skip ids with no callback.
  return true;
}

void Simulator::execute(const QueueEntry& entry) {
  auto it = callbacks_.find(entry.id);
  if (it == callbacks_.end()) return;  // cancelled
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  --live_events_;
  now_ = SimTime(entry.time);
  ++executed_;
  // Stamp the simulated "now" for telemetry spans opened inside the
  // callback (thread-local, so concurrent simulators never collide).
  if (telemetry::Telemetry::enabled()) telemetry::Telemetry::set_sim_now(entry.time);
  fn();
}

std::size_t Simulator::run() {
  std::size_t ran = 0;
  while (!queue_.empty()) {
    if (event_limit_ != 0 && executed_ >= event_limit_)
      throw StateError("Simulator: event limit exceeded (runaway simulation?)");
    const QueueEntry entry = queue_.top();
    queue_.pop();
    const bool live = callbacks_.contains(entry.id);
    execute(entry);
    if (live) ++ran;
  }
  return ran;
}

std::size_t Simulator::run_until(SimTime until) {
  if (until < now_) throw StateError("Simulator: run_until into the past");
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= until.value()) {
    if (event_limit_ != 0 && executed_ >= event_limit_)
      throw StateError("Simulator: event limit exceeded (runaway simulation?)");
    const QueueEntry entry = queue_.top();
    queue_.pop();
    const bool live = callbacks_.contains(entry.id);
    execute(entry);
    if (live) ++ran;
  }
  now_ = until;
  return ran;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    if (!callbacks_.contains(entry.id)) continue;  // cancelled
    execute(entry);
    return true;
  }
  return false;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, SimDuration period, TickFn tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  if (period_.value() <= 0.0) throw StateError("PeriodicProcess: period must be positive");
  if (!tick_) throw StateError("PeriodicProcess: empty tick function");
}

void PeriodicProcess::start() { start_at(sim_.now() + period_); }

void PeriodicProcess::start_at(SimTime first) {
  if (running_) throw StateError("PeriodicProcess: already running");
  running_ = true;
  arm(first);
}

void PeriodicProcess::stop() noexcept {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicProcess::arm(SimTime at) {
  pending_ = sim_.schedule_at(at, [this, at] {
    if (!running_) return;
    ++ticks_;
    if (tick_(at)) {
      arm(at + period_);
    } else {
      running_ = false;
      pending_ = EventHandle{};
    }
  });
}

}  // namespace greensched::des
