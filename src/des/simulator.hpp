// Discrete-event simulation kernel.
//
// The evaluation in the paper runs for minutes to hours of wall time
// (Fig. 9 spans 260 minutes); the DES replays the same timeline in
// milliseconds and deterministically.  Events are ordered by (time,
// sequence number) so same-time events run in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace greensched::des {

/// Simulated timestamp, seconds since experiment start.
using SimTime = greensched::common::Seconds;
/// Simulated duration.
using SimDuration = greensched::common::Seconds;

/// Opaque handle for cancelling a scheduled event.
class EventHandle {
 public:
  constexpr EventHandle() noexcept = default;
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }
  [[nodiscard]] constexpr std::uint64_t id() const noexcept { return id_; }

 private:
  friend class Simulator;
  constexpr explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Single-threaded event-driven simulator.
///
/// Not thread-safe, by design: one Simulator belongs to one experiment
/// run on one thread.  It holds no global state, so any number of
/// instances may run concurrently on different threads — the experiment
/// engine (metrics::SweepRunner) relies on exactly this.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now, else StateError).
  EventHandle schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` after a non-negative delay.
  EventHandle schedule_after(SimDuration delay, Callback fn);
  /// Cancels a pending event; returns false if it already ran/was cancelled.
  bool cancel(EventHandle handle) noexcept;

  /// Runs until the event queue drains.  Returns events executed.
  std::size_t run();
  /// Runs events with time <= until; leaves now() == until if the queue
  /// drained earlier (so periodic processes can be re-armed).
  std::size_t run_until(SimTime until);
  /// Executes the single next event, if any; returns whether one ran.
  bool step();

  [[nodiscard]] bool empty() const noexcept { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_events_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Guard against runaway simulations: run()/run_until() throw StateError
  /// after this many events (0 disables; default 500M).
  void set_event_limit(std::uint64_t limit) noexcept { event_limit_ = limit; }

 private:
  struct QueueEntry {
    double time;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const QueueEntry& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void execute(const QueueEntry& entry);

  SimTime now_{0.0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t event_limit_ = 500'000'000;
  std::size_t live_events_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

/// Re-arming periodic process (control loops, wattmeter sampling).
///
/// The callback receives the firing time; returning false stops the
/// process.  Stopping via stop() cancels the pending event.
class PeriodicProcess {
 public:
  using TickFn = std::function<bool(SimTime)>;

  PeriodicProcess(Simulator& sim, SimDuration period, TickFn tick);
  ~PeriodicProcess() { stop(); }
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Schedules the first tick at now + period (or `first` if given).
  void start();
  void start_at(SimTime first);
  void stop() noexcept;
  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  void arm(SimTime at);

  Simulator& sim_;
  SimDuration period_;
  TickFn tick_;
  EventHandle pending_{};
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace greensched::des
