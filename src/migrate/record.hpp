// Migration journal records: the durable trace of every checkpointed
// task move.
//
// Each migration writes up to two frames into the journal:
//
//   INTENT  — at drain decision time, before anything moves.  Carries
//             the full plan (task, endpoints, transfer finish time).
//   COMMIT  — at checkpoint commit: the task left the source and was
//             resumed at the target with `remaining_flops` of work.
//   ABORT   — the transfer was cancelled (task finished at the source
//             first, or the target lost capacity); the task never moved
//             and keeps running/re-queues at the source.
//
// Recovery replays the log and treats an INTENT without a matching
// COMMIT/ABORT as an in-doubt migration: the task is still owned by the
// source (ownership only ever changes inside the COMMIT frame), so the
// recovered run simply re-queues the drain — a SIGKILL mid-migration can
// neither double-run nor lose a task.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/ids.hpp"

namespace greensched::migrate {

enum class MigrationRecordKind : std::uint32_t {
  kIntent = 1,
  kCommit = 2,
  kAbort = 3,
};

[[nodiscard]] const char* to_string(MigrationRecordKind kind) noexcept;

struct MigrationRecord {
  MigrationRecordKind kind = MigrationRecordKind::kIntent;
  std::uint64_t migration = 0;  ///< controller-local id, shared by the pair
  common::TaskId task{};
  common::RequestId request{};
  std::string source;  ///< SED name the task is leaving
  std::string target;  ///< SED name the task is headed for
  double time = 0.0;   ///< simulated time the frame was written
  /// COMMIT: work balance resumed at the target.  INTENT/ABORT: 0.
  double remaining_flops = 0.0;

  [[nodiscard]] bool operator==(const MigrationRecord&) const = default;
};

/// Encodes `record` as a journal payload (little-endian, bit-exact f64).
[[nodiscard]] std::string encode_migration_record(const MigrationRecord& record);

/// Decodes one payload; throws common::ParseError on truncation, an
/// unknown kind tag, or trailing bytes.
[[nodiscard]] MigrationRecord decode_migration_record(std::string_view payload);

}  // namespace greensched::migrate
