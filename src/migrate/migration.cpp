#include "migrate/migration.hpp"

#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "common/spec.hpp"
#include "telemetry/telemetry.hpp"

namespace greensched::migrate {

namespace {
constexpr const char* kWhat = "migration spec";
}  // namespace

void MigrationOptions::validate() const {
  if (state_mb <= 0.0)
    throw common::ConfigError("migration spec: state must be positive (got " +
                              std::to_string(state_mb) + ")");
  if (bandwidth_mbps <= 0.0)
    throw common::ConfigError("migration spec: bw must be positive (got " +
                              std::to_string(bandwidth_mbps) + ")");
  if (overhead_seconds < 0.0)
    throw common::ConfigError("migration spec: overhead must be >= 0 (got " +
                              std::to_string(overhead_seconds) + ")");
  if (max_in_flight == 0)
    throw common::ConfigError("migration spec: inflight must be >= 1");
  if (min_gain < 0.0)
    throw common::ConfigError("migration spec: gain must be >= 0 (got " +
                              std::to_string(min_gain) + ")");
}

MigrationOptions parse_migration_options(const std::string& spec) {
  const common::ParsedSpec parsed = common::parse_spec(spec, kWhat);
  if (parsed.name != "drain")
    throw common::ConfigError("migration spec '" + parsed.name +
                              "' is not known; known: drain");
  MigrationOptions options;
  for (const common::SpecOption& option : parsed.options) {
    if (option.key == "state")
      options.state_mb = common::spec_double(option, parsed.name, kWhat);
    else if (option.key == "bw")
      options.bandwidth_mbps = common::spec_double(option, parsed.name, kWhat);
    else if (option.key == "overhead")
      options.overhead_seconds = common::spec_double(option, parsed.name, kWhat);
    else if (option.key == "inflight")
      options.max_in_flight = common::spec_count(option, parsed.name, kWhat);
    else if (option.key == "gain")
      options.min_gain = common::spec_double(option, parsed.name, kWhat);
    else
      common::unknown_spec_option(option, parsed.name, kWhat,
                                  "state, bw, overhead, inflight, gain");
  }
  options.validate();
  return options;
}

std::string migration_help(const std::string& indent) {
  std::string out;
  out += indent + "drain:state=MB,bw=MBPS,overhead=S,inflight=N,gain=X\n";
  out += indent + "  checkpointed live migration for provisioner drains:\n";
  out += indent + "  state    checkpoint size shipped per move, MB (default 256)\n";
  out += indent + "  bw       link bandwidth, megabit/s (default 1000)\n";
  out += indent + "  overhead fixed per-move cost, seconds (default 1)\n";
  out += indent + "  inflight max concurrent transfers (default 4)\n";
  out += indent + "  gain     migrate only if remaining runtime > gain x\n";
  out += indent + "           transfer time (default 2)\n";
  return out;
}

MigrationController::MigrationController(diet::Hierarchy& hierarchy,
                                         MigrationOptions options)
    : hierarchy_(hierarchy), options_(options) {
  options_.validate();
  for (const auto& sed : hierarchy_.seds()) seds_[sed->node().id()] = sed.get();
}

void MigrationController::open_journal(const std::filesystem::path& path) {
  const durable::Journal::Replay replay = durable::Journal::replay(path);
  std::set<std::uint64_t> open_intents;
  for (const std::string& payload : replay.records) {
    const MigrationRecord record = decode_migration_record(payload);
    if (record.kind == MigrationRecordKind::kIntent)
      open_intents.insert(record.migration);
    else
      open_intents.erase(record.migration);
  }
  // An unresolved INTENT means the crash hit between the frame and the
  // commit event: ownership never moved, the source still ran the task.
  // Nothing to repair — count it and start this run's log fresh.
  recovered_intents_ = open_intents.size();
  durable::Journal::reset(path);
  journal_ = durable::Journal::open(path);
}

diet::Sed* MigrationController::sed_for(common::NodeId node) const noexcept {
  const auto it = seds_.find(node);
  return it == seds_.end() ? nullptr : it->second;
}

void MigrationController::journal_write(const MigrationRecord& record) {
  if (journal_) journal_->append(encode_migration_record(record));
}

void MigrationController::drain(des::SimTime now,
                                const std::vector<common::NodeId>& sources,
                                const std::vector<common::NodeId>& targets) {
  const double transfer = options_.transfer_seconds();
  for (const common::NodeId source : sources) {
    diet::Sed* src = sed_for(source);
    if (src == nullptr || !src->node().is_on()) continue;
    for (const diet::Sed::RunningView& view : src->running_snapshot()) {
      if (in_flight_.size() >= options_.max_in_flight) return;
      if (migrating_.contains(view.task)) continue;
      // Moving a task that would finish before (or barely after) the
      // checkpoint lands just burns the link for nothing.
      if (view.end_time - now.value() < options_.min_gain * transfer) continue;

      diet::Sed* tgt = nullptr;
      common::NodeId target{};
      for (const common::NodeId candidate : targets) {
        if (candidate == source) continue;
        diet::Sed* sed = sed_for(candidate);
        if (sed == nullptr || !sed->node().is_on() || sed->node().draining()) continue;
        const std::size_t reserved = reserved_.contains(candidate) ? reserved_[candidate] : 0;
        if (!sed->can_accept(static_cast<unsigned>(1 + reserved))) continue;
        tgt = sed;
        target = candidate;
        break;
      }
      if (tgt == nullptr) continue;

      const std::uint64_t id = ++next_id_;
      MigrationRecord intent;
      intent.kind = MigrationRecordKind::kIntent;
      intent.migration = id;
      intent.task = view.task;
      intent.request = view.request;
      intent.source = src->name();
      intent.target = tgt->name();
      intent.time = now.value();
      journal_write(intent);

      ++started_;
      GS_TCOUNT(migrations_started);
      in_flight_[id] = InFlight{view.task, view.request, source, target};
      migrating_.insert(view.task);
      ++reserved_[target];
      ++outgoing_[source];
      src->node().set_draining(true);
      telemetry::Telemetry::instant("migration.intent", "migrate", now.value(),
                                    view.task.value(), src->name());

      const des::SimTime commit_at = now + common::Seconds(transfer);
      hierarchy_.sim().schedule_at(commit_at, [this, id] {
        finish(hierarchy_.sim().now(), id);
      });
    }
  }
}

void MigrationController::finish(des::SimTime now, std::uint64_t migration) {
  const auto it = in_flight_.find(migration);
  if (it == in_flight_.end()) return;  // defensive: never double-resolved
  const InFlight flight = it->second;

  diet::Sed* src = sed_for(flight.source);
  diet::Sed* tgt = sed_for(flight.target);
  const std::optional<diet::Sed::RunningView> view =
      src != nullptr ? src->find_running(flight.task) : std::nullopt;

  // The task finished (or died with a crashed source) before the
  // checkpoint landed — `end_time <= now` covers the same-timestamp
  // completion whichever event the simulator pops first.
  const bool source_done = !view.has_value() || view->end_time <= now.value();
  // Target crashed or filled up since the intent: the task never moved
  // and keeps running at the source; the next provisioner tick simply
  // re-queues the drain.
  const bool target_gone =
      tgt == nullptr || !tgt->node().is_on() || !tgt->can_accept(1);

  if (source_done || target_gone) {
    MigrationRecord abort;
    abort.kind = MigrationRecordKind::kAbort;
    abort.migration = migration;
    abort.task = flight.task;
    abort.request = flight.request;
    abort.source = src != nullptr ? src->name() : std::string{};
    abort.target = tgt != nullptr ? tgt->name() : std::string{};
    abort.time = now.value();
    journal_write(abort);
    ++aborted_;
    GS_TCOUNT(migrations_aborted);
    resolve(now, migration, flight, false);
    return;
  }

  diet::Sed::MigratedTask task = src->detach_for_migration(flight.task);
  MigrationRecord commit;
  commit.kind = MigrationRecordKind::kCommit;
  commit.migration = migration;
  commit.task = flight.task;
  commit.request = flight.request;
  commit.source = src->name();
  commit.target = tgt->name();
  commit.time = now.value();
  commit.remaining_flops = task.remaining.value();
  journal_write(commit);

  tgt->resume_migrated(std::move(task));
  ++committed_;
  GS_TCOUNT(migrations_committed);
  resolve(now, migration, flight, true);
  // The source just freed a core without completing a task; queued
  // requests may now be servable there.
  hierarchy_.notify_capacity_change();
}

void MigrationController::resolve(des::SimTime now, std::uint64_t migration,
                                  const InFlight& flight, bool committed) {
  diet::Sed* src = sed_for(flight.source);
  diet::Sed* tgt = sed_for(flight.target);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", now.value());
  sequence_ += buf;
  sequence_ += ':';
  sequence_ += std::to_string(flight.task.value());
  sequence_ += ':';
  sequence_ += src != nullptr ? src->name() : "?";
  sequence_ += '>';
  sequence_ += tgt != nullptr ? tgt->name() : "?";
  sequence_ += committed ? ":c;" : ":a;";

  in_flight_.erase(migration);
  migrating_.erase(flight.task);
  if (const auto r = reserved_.find(flight.target); r != reserved_.end()) {
    if (--r->second == 0) reserved_.erase(r);
  }
  if (const auto o = outgoing_.find(flight.source); o != outgoing_.end()) {
    if (--o->second == 0) {
      outgoing_.erase(o);
      if (src != nullptr) src->node().set_draining(false);
    }
  }
}

}  // namespace greensched::migrate
