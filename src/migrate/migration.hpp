// gs_migrate: checkpointed live task migration.
//
// The provisioner can only power a node down once it is empty; without
// migration a single long task strands an inefficient machine at near-idle
// power for hours (exactly the case the paper's Sagittaire nodes hit).
// The MigrationController closes that gap: invoked from the provisioner's
// check hook with the nodes it wants empty (least-efficient first) and the
// nodes it wants to keep (most-efficient first), it checkpoints running
// tasks off the drain set and resumes them on the keep set.
//
// A migration is a tiny state machine:
//
//   INTENT ──(transfer_seconds later)──► COMMIT   task detached at source,
//        │                                        resumed at target
//        └────────────────────────────► ABORT    task finished at the
//                                                 source first, or the
//                                                 target lost capacity —
//                                                 the task never moved
//
// Ownership changes only inside COMMIT: until then the task keeps running
// at the source, so an abort is free (the "fallback re-queue" is simply
// the next provisioner tick retrying the drain).  Each transition is
// journaled through gs_durable before it takes effect, so a SIGKILL
// mid-migration can neither double-run nor lose a task: an INTENT with no
// resolution means the source still owned the task.
//
// Determinism: the controller draws no randomness and runs entirely in
// simulator events, so a fixed seed and shard count reproduce the exact
// migration sequence bit-for-bit; with no --migration spec it is never
// constructed and the run is byte-identical to a migration-free build.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "des/simulator.hpp"
#include "diet/hierarchy.hpp"
#include "durable/journal.hpp"
#include "migrate/record.hpp"

namespace greensched::migrate {

/// Cost-model and policy knobs, settable via "drain:k=v,..." specs.
struct MigrationOptions {
  /// Checkpoint state size shipped per migration, in megabytes.
  double state_mb = 256.0;
  /// Link bandwidth between any two nodes, in megabits per second
  /// (Grid'5000 gigabit interconnect by default).
  double bandwidth_mbps = 1000.0;
  /// Fixed per-migration overhead (checkpoint + re-queue), seconds.
  double overhead_seconds = 1.0;
  /// Cap on concurrently in-flight migrations across the platform.
  std::size_t max_in_flight = 4;
  /// Only migrate a task whose remaining runtime exceeds this multiple
  /// of the transfer time — moving a nearly-done task wastes the link.
  double min_gain = 2.0;

  /// Seconds to ship one checkpoint: overhead + size / bandwidth.
  [[nodiscard]] double transfer_seconds() const noexcept {
    return overhead_seconds + state_mb * 8.0 / bandwidth_mbps;
  }

  /// Throws common::ConfigError on non-positive sizes/bandwidth or a
  /// zero in-flight cap.
  void validate() const;
};

/// Parses "drain:state=256,bw=1000,overhead=1,inflight=4,gain=2".
/// Throws common::ConfigError on an unknown name/key or bad value.
[[nodiscard]] MigrationOptions parse_migration_options(const std::string& spec);

/// CLI help block for the --migration flag, indented by `indent`.
[[nodiscard]] std::string migration_help(const std::string& indent);

/// Drives checkpointed migrations over one hierarchy.  Single-threaded,
/// RNG-free; all mutation happens inside simulator events.
class MigrationController {
 public:
  MigrationController(diet::Hierarchy& hierarchy, MigrationOptions options);

  /// Attaches a write-ahead journal at `path`.  Any existing log is
  /// replayed first: complete frames are scanned, INTENT frames with no
  /// COMMIT/ABORT are counted as recovered in-doubt migrations (the task
  /// stayed with its source — nothing to undo), and the file is then
  /// reset for this run's frames.
  void open_journal(const std::filesystem::path& path);

  /// Provisioner check hook: try to empty `sources` (least efficient
  /// first) onto `targets` (most efficient first).  Starts at most
  /// enough transfers to stay within max_in_flight; tasks already in
  /// flight, nearly finished, or without a viable target are skipped.
  void drain(des::SimTime now, const std::vector<common::NodeId>& sources,
             const std::vector<common::NodeId>& targets);

  // --- counters (per run) ---
  [[nodiscard]] std::uint64_t started() const noexcept { return started_; }
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }
  [[nodiscard]] std::uint64_t aborted() const noexcept { return aborted_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_.size(); }
  [[nodiscard]] std::uint64_t recovered_intents() const noexcept { return recovered_intents_; }

  /// Resolution log, one entry per finished migration:
  /// "<time>:<task>:<source>><target>:<c|a>;" with %.17g times — the
  /// determinism contract compares this string across shard counts.
  [[nodiscard]] const std::string& sequence() const noexcept { return sequence_; }

  [[nodiscard]] const MigrationOptions& options() const noexcept { return options_; }

 private:
  struct InFlight {
    common::TaskId task{};
    common::RequestId request{};
    common::NodeId source{};
    common::NodeId target{};
  };

  void finish(des::SimTime now, std::uint64_t migration);
  void journal_write(const MigrationRecord& record);
  void resolve(des::SimTime now, std::uint64_t migration, const InFlight& flight,
               bool committed);
  [[nodiscard]] diet::Sed* sed_for(common::NodeId node) const noexcept;

  diet::Hierarchy& hierarchy_;
  MigrationOptions options_;
  std::optional<durable::Journal> journal_;

  std::map<common::NodeId, diet::Sed*> seds_;       ///< platform map, built once
  std::map<std::uint64_t, InFlight> in_flight_;     ///< keyed by migration id
  std::set<common::TaskId> migrating_;              ///< tasks with an open INTENT
  std::map<common::NodeId, std::size_t> reserved_;  ///< inbound reservations
  std::map<common::NodeId, std::size_t> outgoing_;  ///< open drains per source

  std::uint64_t next_id_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t recovered_intents_ = 0;
  std::string sequence_;
};

}  // namespace greensched::migrate
