#include "migrate/record.hpp"

#include "common/error.hpp"
#include "durable/serialize.hpp"

namespace greensched::migrate {

const char* to_string(MigrationRecordKind kind) noexcept {
  switch (kind) {
    case MigrationRecordKind::kIntent:
      return "INTENT";
    case MigrationRecordKind::kCommit:
      return "COMMIT";
    case MigrationRecordKind::kAbort:
      return "ABORT";
  }
  return "?";
}

std::string encode_migration_record(const MigrationRecord& record) {
  durable::ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(record.kind));
  writer.u64(record.migration);
  writer.u64(record.task.value());
  writer.u64(record.request.value());
  writer.str(record.source);
  writer.str(record.target);
  writer.f64(record.time);
  writer.f64(record.remaining_flops);
  return writer.take();
}

MigrationRecord decode_migration_record(std::string_view payload) {
  durable::ByteReader reader(payload);
  MigrationRecord record;
  const std::uint32_t kind = reader.u32();
  if (kind < 1 || kind > 3)
    throw common::ParseError(
        "migration record: unknown kind tag " + std::to_string(kind), 0, 0);
  record.kind = static_cast<MigrationRecordKind>(kind);
  record.migration = reader.u64();
  record.task = common::TaskId(reader.u64());
  record.request = common::RequestId(reader.u64());
  record.source = reader.str();
  record.target = reader.str();
  record.time = reader.f64();
  record.remaining_flops = reader.f64();
  reader.expect_end();
  return record;
}

}  // namespace greensched::migrate
