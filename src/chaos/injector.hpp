// ChaosInjector: drives a ChaosScenario against a live hierarchy.
//
// Every node gets an independent Weibull failure process; crashed nodes
// go through a stochastic repair -> (maybe) reboot -> (maybe) boot-crash
// cycle; whole clusters can be taken out at once; and recovery
// notifications can be delayed to simulate a stale middleware view.
// All randomness comes from one stream split() off the run's RNG at
// construction, so a seed reproduces the exact same storm — including
// across SweepRunner threads, since the injector touches nothing global.
//
// Termination contract: no *new* fault is armed at or past the
// scenario's horizon, and every in-flight repair cycle converges (the
// scenario validator caps boot_failure_p), so Simulator::run() always
// drains.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/scenario.hpp"
#include "common/rng.hpp"
#include "diet/hierarchy.hpp"

namespace greensched::chaos {

class ChaosInjector {
 public:
  /// Validates the scenario and splits a private RNG stream off the
  /// run's generator.  Construct *after* clients so a disabled scenario
  /// leaves the failure-free draw sequence untouched.
  ChaosInjector(diet::Hierarchy& hierarchy, ChaosScenario scenario);
  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Arms the per-node failure processes and the cluster-outage process.
  /// No-op for a disabled scenario.  Call once, before Simulator::run().
  void start();

  [[nodiscard]] const ChaosScenario& scenario() const noexcept { return scenario_; }

  // --- outcome counters ---
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  /// Crash timers that found the node OFF or already FAILED.
  [[nodiscard]] std::uint64_t crashes_skipped() const noexcept { return crashes_skipped_; }
  [[nodiscard]] std::uint64_t tasks_killed() const noexcept { return tasks_killed_; }
  [[nodiscard]] std::uint64_t repairs() const noexcept { return repairs_; }
  /// Repairs that ended with the node powered back ON.
  [[nodiscard]] std::uint64_t reboots() const noexcept { return reboots_; }
  /// Repaired nodes left OFF (repair-without-reboot).
  [[nodiscard]] std::uint64_t left_off() const noexcept { return left_off_; }
  /// Crashed nodes never repaired (FAILED to the end of the run).
  [[nodiscard]] std::uint64_t unrepaired() const noexcept { return unrepaired_; }
  /// Reboots that crashed again during BOOTING.
  [[nodiscard]] std::uint64_t boot_failures() const noexcept { return boot_failures_; }
  [[nodiscard]] std::uint64_t cluster_outages() const noexcept { return cluster_outages_; }
  /// Capacity notifications that were delivered late (staleness).
  [[nodiscard]] std::uint64_t stale_notifications() const noexcept {
    return stale_notifications_;
  }
  // --- gray-failure counters ---
  /// Estimation stalls injected (stall_mtbf process).
  [[nodiscard]] std::uint64_t stalls() const noexcept { return stalls_; }
  /// Flap cycles started (crash that auto-repairs after flap_down).
  [[nodiscard]] std::uint64_t flaps() const noexcept { return flaps_; }
  /// SEDs marked permanently limping at start().
  [[nodiscard]] std::uint64_t limping_seds() const noexcept { return limping_; }

 private:
  struct Channel {
    diet::Sed* sed = nullptr;
    /// Bumped on every chaos-initiated power_on; a scheduled boot
    /// completion no-ops unless its epoch still matches, so a crash (or
    /// outage) during BOOTING can never be "completed" by a stale timer.
    std::uint64_t boot_epoch = 0;
  };

  [[nodiscard]] bool past_horizon(double at) const noexcept {
    return at >= scenario_.horizon_seconds;
  }

  /// Kills the SED's node (tasks die with record.failed set).
  void kill(diet::Sed& sed, const char* cause);
  /// Arms the next crash timer for this node.  The timer chain is
  /// self-perpetuating until the horizon — a timer that finds the node
  /// down simply skips — which keeps it independent of the repair
  /// cycles and outage restores happening in parallel.
  void arm_crash(std::size_t channel);
  void on_crash_timer(std::size_t channel);
  /// Post-crash fate: repair after MTTR, or abandoned FAILED forever.
  void begin_repair_cycle(std::size_t channel);
  void on_repair(std::size_t channel);
  /// Chaos-driven power-on; boot failure and staleness apply on completion.
  void boot_node(std::size_t channel);
  void on_boot_complete(std::size_t channel, std::uint64_t epoch);
  /// Fires the hierarchy's capacity-change channel, possibly late.
  void notify_capacity();

  void arm_outage();
  void on_outage();

  /// Gray processes: stalls freeze a SED's estimation responses for a
  /// Weibull-mean duration; flaps are short crash-and-auto-recover
  /// cycles.  Both are per-channel self-perpetuating timer chains ending
  /// at the horizon, exactly like arm_crash.
  void arm_stall(std::size_t channel);
  void on_stall(std::size_t channel);
  void arm_flap(std::size_t channel);
  void on_flap(std::size_t channel);

  diet::Hierarchy& hierarchy_;
  ChaosScenario scenario_;
  common::Rng rng_;
  std::vector<Channel> channels_;
  /// Channel indices grouped by cluster, for correlated outages.
  std::vector<std::vector<std::size_t>> cluster_groups_;
  bool started_ = false;

  std::uint64_t crashes_ = 0;
  std::uint64_t crashes_skipped_ = 0;
  std::uint64_t tasks_killed_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t reboots_ = 0;
  std::uint64_t left_off_ = 0;
  std::uint64_t unrepaired_ = 0;
  std::uint64_t boot_failures_ = 0;
  std::uint64_t cluster_outages_ = 0;
  std::uint64_t stale_notifications_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t flaps_ = 0;
  std::uint64_t limping_ = 0;
};

}  // namespace greensched::chaos
