#include "chaos/injector.hpp"

#include <map>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace greensched::chaos {

using cluster::NodeState;
using common::Seconds;

ChaosInjector::ChaosInjector(diet::Hierarchy& hierarchy, ChaosScenario scenario)
    : hierarchy_(hierarchy), scenario_(scenario), rng_(hierarchy.rng().split()) {
  scenario_.validate();
}

void ChaosInjector::start() {
  if (started_) throw common::StateError("ChaosInjector: start() called twice");
  started_ = true;
  if (!scenario_.enabled()) return;

  std::map<std::uint64_t, std::size_t> group_of_cluster;
  for (const auto& sed : hierarchy_.seds()) {
    channels_.push_back(Channel{sed.get(), 0});
    const std::uint64_t cluster = sed->node().cluster().value();
    auto [it, inserted] = group_of_cluster.try_emplace(cluster, cluster_groups_.size());
    if (inserted) cluster_groups_.emplace_back();
    cluster_groups_[it->second].push_back(channels_.size() - 1);
  }
  if (channels_.empty())
    throw common::StateError("ChaosInjector: hierarchy has no SEDs to fail");

  if (scenario_.mtbf_seconds > 0.0) {
    for (std::size_t i = 0; i < channels_.size(); ++i) arm_crash(i);
  }
  if (scenario_.cluster_outage_mtbf > 0.0) arm_outage();

  // Gray failures: limping is a one-shot Bernoulli per SED (the draw
  // order is channel order, i.e. hierarchy attach order, so a seed
  // always limps the same machines); stalls and flaps are timer chains.
  if (scenario_.limp_fraction > 0.0) {
    for (auto& channel : channels_) {
      if (!rng_.bernoulli(scenario_.limp_fraction)) continue;
      channel.sed->set_limp_latency(scenario_.limp_latency_seconds);
      ++limping_;
      GS_TCOUNT(chaos_limping_seds);
    }
  }
  if (scenario_.stall_mtbf_seconds > 0.0) {
    for (std::size_t i = 0; i < channels_.size(); ++i) arm_stall(i);
  }
  if (scenario_.flap_mtbf_seconds > 0.0) {
    for (std::size_t i = 0; i < channels_.size(); ++i) arm_flap(i);
  }
}

void ChaosInjector::kill(diet::Sed& sed, const char* cause) {
  tasks_killed_ += sed.inject_failure();
  ++crashes_;
  GS_TCOUNT(chaos_crashes);
  telemetry::Telemetry::instant("chaos.crash", "chaos", hierarchy_.sim().now().value(),
                                sed.node().id().value(), cause);
}

void ChaosInjector::arm_crash(std::size_t channel) {
  const double ttf = rng_.weibull_mean(scenario_.weibull_shape, scenario_.mtbf_seconds);
  const double at = hierarchy_.sim().now().value() + ttf;
  if (past_horizon(at)) return;  // chain ends here; the queue can drain
  hierarchy_.sim().schedule_at(Seconds(at), [this, channel] { on_crash_timer(channel); });
}

void ChaosInjector::on_crash_timer(std::size_t channel) {
  diet::Sed& sed = *channels_[channel].sed;
  const NodeState state = sed.node().state();
  if (state == NodeState::kOff || state == NodeState::kFailed) {
    // A down machine cannot crash; it may be back up by the next draw.
    ++crashes_skipped_;
  } else {
    kill(sed, "mtbf");
    begin_repair_cycle(channel);
  }
  arm_crash(channel);
}

void ChaosInjector::begin_repair_cycle(std::size_t channel) {
  if (!rng_.bernoulli(scenario_.repair_probability)) {
    ++unrepaired_;  // dead hardware: FAILED for the rest of the run
    return;
  }
  const double delay = rng_.exponential(1.0 / scenario_.mttr_seconds);
  hierarchy_.sim().schedule_after(Seconds(delay), [this, channel] { on_repair(channel); });
}

void ChaosInjector::on_repair(std::size_t channel) {
  cluster::Node& node = channels_[channel].sed->node();
  // An outage restore (or another cycle) may have handled it already.
  if (node.state() != NodeState::kFailed) return;
  node.repair(hierarchy_.sim().now());
  ++repairs_;
  if (!rng_.bernoulli(scenario_.reboot_probability)) {
    // Repaired but left OFF: the provisioner may reclaim it later.
    ++left_off_;
    return;
  }
  boot_node(channel);
}

void ChaosInjector::boot_node(std::size_t channel) {
  cluster::Node& node = channels_[channel].sed->node();
  const Seconds now = hierarchy_.sim().now();
  node.power_on(now);
  const std::uint64_t epoch = ++channels_[channel].boot_epoch;
  hierarchy_.sim().schedule_at(now + node.spec().boot_seconds, [this, channel, epoch] {
    on_boot_complete(channel, epoch);
  });
}

void ChaosInjector::on_boot_complete(std::size_t channel, std::uint64_t epoch) {
  Channel& ch = channels_[channel];
  if (ch.boot_epoch != epoch) return;  // superseded by a newer boot
  cluster::Node& node = ch.sed->node();
  if (node.state() != NodeState::kBooting) return;  // crashed while booting
  if (rng_.bernoulli(scenario_.boot_failure_probability)) {
    // The classic half-up failure: dies coming back, repair starts over.
    kill(*ch.sed, "boot-failure");
    ++boot_failures_;
    GS_TCOUNT(chaos_boot_failures);
    begin_repair_cycle(channel);
    return;
  }
  node.complete_boot(hierarchy_.sim().now());
  ++reboots_;
  notify_capacity();
}

void ChaosInjector::notify_capacity() {
  if (scenario_.staleness_seconds > 0.0) {
    // The middleware's view of recovered capacity lags reality; timed
    // client retries are what rescue requests in the gap.
    const double delay = rng_.uniform(0.0, scenario_.staleness_seconds);
    ++stale_notifications_;
    GS_TCOUNT(chaos_stale_notifications);
    hierarchy_.sim().schedule_after(Seconds(delay),
                                    [this] { hierarchy_.notify_capacity_change(); });
    return;
  }
  hierarchy_.notify_capacity_change();
}

void ChaosInjector::arm_stall(std::size_t channel) {
  const double at = hierarchy_.sim().now().value() +
                    rng_.exponential(1.0 / scenario_.stall_mtbf_seconds);
  if (past_horizon(at)) return;
  hierarchy_.sim().schedule_at(Seconds(at), [this, channel] { on_stall(channel); });
}

void ChaosInjector::on_stall(std::size_t channel) {
  // The duration draw happens unconditionally so the RNG stream does not
  // depend on node state (a stall of a down node is a no-op, but the
  // storm's later draws must not shift because of it).
  const double duration =
      rng_.weibull_mean(scenario_.weibull_shape, scenario_.stall_seconds);
  diet::Sed& sed = *channels_[channel].sed;
  const NodeState state = sed.node().state();
  if (state != NodeState::kOff && state != NodeState::kFailed) {
    sed.stall_until(hierarchy_.sim().now() + Seconds(duration));
    ++stalls_;
    GS_TCOUNT(chaos_stalls);
    telemetry::Telemetry::instant("chaos.stall", "chaos", hierarchy_.sim().now().value(),
                                  sed.node().id().value(), "stall");
  }
  arm_stall(channel);
}

void ChaosInjector::arm_flap(std::size_t channel) {
  const double at = hierarchy_.sim().now().value() +
                    rng_.exponential(1.0 / scenario_.flap_mtbf_seconds);
  if (past_horizon(at)) return;
  hierarchy_.sim().schedule_at(Seconds(at), [this, channel] { on_flap(channel); });
}

void ChaosInjector::on_flap(std::size_t channel) {
  // Down-time draw first, unconditionally, for the same stream-stability
  // reason as on_stall.
  const double down = rng_.exponential(1.0 / scenario_.flap_down_seconds);
  diet::Sed& sed = *channels_[channel].sed;
  const NodeState state = sed.node().state();
  if (state != NodeState::kOff && state != NodeState::kFailed) {
    kill(sed, "flap");
    ++flaps_;
    GS_TCOUNT(chaos_flaps);
    // Unlike the MTBF repair lottery, a flap always comes back: repair +
    // reboot after the down time (boot hazards still apply on completion).
    hierarchy_.sim().schedule_after(Seconds(down), [this, channel] {
      cluster::Node& node = channels_[channel].sed->node();
      if (node.state() != NodeState::kFailed) return;  // outage restore beat us
      node.repair(hierarchy_.sim().now());
      ++repairs_;
      boot_node(channel);
    });
  }
  arm_flap(channel);
}

void ChaosInjector::arm_outage() {
  const double at =
      hierarchy_.sim().now().value() + rng_.exponential(1.0 / scenario_.cluster_outage_mtbf);
  if (past_horizon(at)) return;
  hierarchy_.sim().schedule_at(Seconds(at), [this] { on_outage(); });
}

void ChaosInjector::on_outage() {
  const std::size_t group = rng_.index(cluster_groups_.size());
  ++cluster_outages_;
  GS_TCOUNT(chaos_cluster_outages);
  telemetry::Telemetry::instant("chaos.outage", "chaos", hierarchy_.sim().now().value(), group);

  // Power dies for the whole enclosure at once: every powered node
  // crashes; nodes already OFF or FAILED are untouched (and keep
  // whatever repair cycle they were in).
  std::vector<std::size_t> downed;
  for (const std::size_t index : cluster_groups_[group]) {
    const NodeState state = channels_[index].sed->node().state();
    if (state == NodeState::kOff || state == NodeState::kFailed) continue;
    kill(*channels_[index].sed, "outage");
    downed.push_back(index);
  }

  // Restoration brings exactly the nodes this outage took down back in
  // one sweep (repair + reboot each, with the usual boot hazards).
  const double delay = rng_.exponential(1.0 / scenario_.cluster_outage_mttr);
  hierarchy_.sim().schedule_after(Seconds(delay), [this, downed = std::move(downed)] {
    for (const std::size_t index : downed) {
      cluster::Node& node = channels_[index].sed->node();
      if (node.state() != NodeState::kFailed) continue;
      node.repair(hierarchy_.sim().now());
      ++repairs_;
      boot_node(index);
    }
  });

  arm_outage();
}

}  // namespace greensched::chaos
