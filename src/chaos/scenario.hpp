// Chaos scenario: a declarative description of the fault processes to
// unleash on a run.
//
// The paper's premise is that energy-aware provisioning must coexist
// with machines disappearing — grid tools "interpret powered-off
// resources as failures that can compromise the execution of services"
// (Section II-B).  A ChaosScenario bundles every stochastic fault knob
// into one value that travels through PlacementConfig, the CLI
// (`greensched chaos --scenario ...`) and the sweep runner, so the same
// storm is reproducible from a seed anywhere in the stack.
#pragma once

#include <string>
#include <string_view>

namespace greensched::chaos {

/// All rates are mean seconds (MTBF/MTTR parameterization); probabilities
/// are in [0, 1].  The default scenario is inert: enabled() == false and
/// a run behaves bit-identically to one with no chaos layer at all.
struct ChaosScenario {
  /// Per-node mean time between failures (0 disables node crashes).
  /// Inter-failure times are Weibull(shape, mean = mtbf_seconds) drawn
  /// per node from a seed-split stream.
  double mtbf_seconds = 0.0;
  /// Weibull shape k: 1 = memoryless (exponential), k < 1 infant
  /// mortality, k > 1 wear-out.  Failure-trace studies of real grids fit
  /// k in [0.6, 0.8].
  double weibull_shape = 1.0;
  /// Mean time to repair a crashed node (exponential).
  double mttr_seconds = 300.0;
  /// Chance a crashed node is ever repaired; the remainder stay FAILED
  /// for the rest of the run (dead-on-the-floor hardware).
  double repair_probability = 1.0;
  /// Chance a repaired node is powered straight back on; the remainder
  /// are left OFF for the provisioner to reclaim (repair-without-reboot).
  double reboot_probability = 1.0;
  /// Chance a reboot crashes *during* BOOTING (the classic half-up
  /// failure mode); the node fails again and re-enters the repair cycle.
  double boot_failure_probability = 0.0;
  /// Mean time between correlated cluster-wide outages (0 disables).
  /// An outage crashes every powered node of one uniformly chosen
  /// cluster at once — the PDU/switch failure a per-node MTBF never
  /// produces.
  double cluster_outage_mtbf = 0.0;
  /// Mean time to restore an outaged cluster (all nodes repaired and
  /// rebooted together).
  double cluster_outage_mttr = 900.0;
  /// Planning staleness: capacity-change notifications for recovered
  /// nodes are delayed by Uniform(0, staleness_seconds) — the
  /// middleware's view of the platform lags reality, which is what makes
  /// timed client retries matter (0 = notifications are immediate).
  double staleness_seconds = 0.0;
  /// Injection horizon: no *new* fault is armed at or past this time, so
  /// the event queue is guaranteed to drain.  Required (> 0) whenever
  /// any fault process is enabled.
  double horizon_seconds = 0.0;

  // --- Gray failures: nodes that are slow, not dead. -------------------
  /// Per-SED mean time between estimation stalls (0 disables).  Stall
  /// arrivals are exponential; each stall freezes the SED's estimation
  /// responses for Weibull(shape, mean = stall_seconds) simulated
  /// seconds.  Latency is sim-time metadata only — estimation *content*
  /// and the RNG sequence are untouched, so determinism holds at any
  /// shard count.
  double stall_mtbf_seconds = 0.0;
  /// Mean stall duration (Weibull mean, reusing `shape` above).
  double stall_seconds = 10.0;
  /// Per-SED mean time between flaps (0 disables).  A flap is a short
  /// crash-and-recover cycle: the node fails, then is repaired and
  /// rebooted after exponential(mean = flap_down_seconds) — the
  /// "works-again-before-anyone-looks" failure mode.
  double flap_mtbf_seconds = 0.0;
  /// Mean down time of a flap before the automatic repair + reboot.
  double flap_down_seconds = 30.0;
  /// Fraction of SEDs that limp for the whole run: each SED is
  /// independently limping with this probability (one Bernoulli draw per
  /// SED at injector start), adding a constant `limp_latency_seconds` to
  /// every estimation response.
  double limp_fraction = 0.0;
  /// Constant estimation latency of a limping SED.
  double limp_latency_seconds = 30.0;

  /// True when any fault process is switched on.
  [[nodiscard]] bool enabled() const noexcept {
    return mtbf_seconds > 0.0 || cluster_outage_mtbf > 0.0 || gray_enabled();
  }

  /// True when any gray-failure process (stall/flap/limp) is switched on.
  [[nodiscard]] bool gray_enabled() const noexcept {
    return stall_mtbf_seconds > 0.0 || flap_mtbf_seconds > 0.0 || limp_fraction > 0.0;
  }

  /// Throws common::ConfigError on out-of-range values, or on an enabled
  /// scenario without a horizon.
  void validate() const;

  /// Parses "preset" or "preset,key=value,..." or "key=value,...".
  /// Presets: "none" (inert), "calm" (rare single-node crashes, clean
  /// reboots), "storm" (frequent Weibull crashes, boot failures, cluster
  /// outages, stale planning).  Keys are the field names without the
  /// `_seconds` suffix spelled out: mtbf, shape, mttr, repair_p,
  /// reboot_p, boot_failure_p, outage_mtbf, outage_mttr, staleness,
  /// horizon, stall_mtbf, stall, flap_mtbf, flap_down, limp_fraction,
  /// limp_latency.  Throws common::ConfigError on unknown keys or bad
  /// values; the unknown-key message lists every valid key so a typo'd
  /// spec is self-correcting from the error alone.
  [[nodiscard]] static ChaosScenario parse(std::string_view text);

  /// Canonical "key=value,..." round-trippable through parse().
  [[nodiscard]] std::string to_string() const;
};

}  // namespace greensched::chaos
