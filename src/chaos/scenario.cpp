#include "chaos/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/error.hpp"

namespace greensched::chaos {

using common::ConfigError;

namespace {

// Every check starts with isfinite: NaN slips through any ordering
// comparison ("NaN < 0" is false), so a plain range test would wave a
// "mtbf=nan" spec straight into the fault processes.
void check_finite(double v, const char* name) {
  if (!std::isfinite(v))
    throw ConfigError(std::string("ChaosScenario: ") + name + " must be finite");
}

void check_probability(double p, const char* name) {
  check_finite(p, name);
  if (p < 0.0 || p > 1.0)
    throw ConfigError(std::string("ChaosScenario: ") + name + " must be in [0, 1]");
}

void check_nonnegative(double v, const char* name) {
  check_finite(v, name);
  if (v < 0.0) throw ConfigError(std::string("ChaosScenario: ") + name + " must be >= 0");
}

double parse_double(std::string_view key, std::string_view value) {
  try {
    std::size_t consumed = 0;
    const std::string text(value);
    const double parsed = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("ChaosScenario: bad value '" + std::string(value) + "' for '" +
                      std::string(key) + "'");
  }
}

/// The rare-fault baseline: a handful of independent crashes over a
/// two-hour horizon, always repaired and rebooted cleanly.
ChaosScenario calm_preset() {
  ChaosScenario s;
  s.mtbf_seconds = 20'000.0;
  s.weibull_shape = 1.0;
  s.mttr_seconds = 300.0;
  s.horizon_seconds = 7'200.0;
  return s;
}

/// The kitchen sink: infant-mortality Weibull crashes, flaky reboots,
/// nodes abandoned OFF, correlated cluster outages and stale planning.
ChaosScenario storm_preset() {
  ChaosScenario s;
  s.mtbf_seconds = 4'000.0;
  s.weibull_shape = 0.7;
  s.mttr_seconds = 240.0;
  s.repair_probability = 0.95;
  s.reboot_probability = 0.85;
  s.boot_failure_probability = 0.10;
  s.cluster_outage_mtbf = 10'000.0;
  s.cluster_outage_mttr = 600.0;
  s.staleness_seconds = 120.0;
  s.horizon_seconds = 7'200.0;
  return s;
}

bool apply_key(ChaosScenario& s, std::string_view key, double value) {
  if (key == "mtbf") s.mtbf_seconds = value;
  else if (key == "shape") s.weibull_shape = value;
  else if (key == "mttr") s.mttr_seconds = value;
  else if (key == "repair_p") s.repair_probability = value;
  else if (key == "reboot_p") s.reboot_probability = value;
  else if (key == "boot_failure_p") s.boot_failure_probability = value;
  else if (key == "outage_mtbf") s.cluster_outage_mtbf = value;
  else if (key == "outage_mttr") s.cluster_outage_mttr = value;
  else if (key == "staleness") s.staleness_seconds = value;
  else if (key == "horizon") s.horizon_seconds = value;
  else if (key == "stall_mtbf") s.stall_mtbf_seconds = value;
  else if (key == "stall") s.stall_seconds = value;
  else if (key == "flap_mtbf") s.flap_mtbf_seconds = value;
  else if (key == "flap_down") s.flap_down_seconds = value;
  else if (key == "limp_fraction") s.limp_fraction = value;
  else if (key == "limp_latency") s.limp_latency_seconds = value;
  else return false;
  return true;
}

/// Kept next to apply_key so adding a key there without listing it here
/// fails the scenario-parser test, not a user at 2 a.m.
constexpr const char* kValidKeys =
    "mtbf, shape, mttr, repair_p, reboot_p, boot_failure_p, outage_mtbf, "
    "outage_mttr, staleness, horizon, stall_mtbf, stall, flap_mtbf, "
    "flap_down, limp_fraction, limp_latency";

}  // namespace

void ChaosScenario::validate() const {
  check_nonnegative(mtbf_seconds, "mtbf");
  check_finite(weibull_shape, "shape");
  if (weibull_shape <= 0.0) throw ConfigError("ChaosScenario: shape must be > 0");
  check_finite(mttr_seconds, "mttr");
  if (mttr_seconds <= 0.0) throw ConfigError("ChaosScenario: mttr must be > 0");
  check_probability(repair_probability, "repair_p");
  check_probability(reboot_probability, "reboot_p");
  check_probability(boot_failure_probability, "boot_failure_p");
  // A boot that always fails would cycle crash->repair->crash forever.
  if (boot_failure_probability > 0.9)
    throw ConfigError("ChaosScenario: boot_failure_p above 0.9 may never converge");
  check_nonnegative(cluster_outage_mtbf, "outage_mtbf");
  check_finite(cluster_outage_mttr, "outage_mttr");
  if (cluster_outage_mttr <= 0.0) throw ConfigError("ChaosScenario: outage_mttr must be > 0");
  check_nonnegative(staleness_seconds, "staleness");
  check_nonnegative(horizon_seconds, "horizon");
  check_nonnegative(stall_mtbf_seconds, "stall_mtbf");
  check_finite(stall_seconds, "stall");
  if (stall_mtbf_seconds > 0.0 && stall_seconds <= 0.0)
    throw ConfigError("ChaosScenario: stall must be > 0 when stall_mtbf is set");
  check_nonnegative(flap_mtbf_seconds, "flap_mtbf");
  check_finite(flap_down_seconds, "flap_down");
  if (flap_mtbf_seconds > 0.0 && flap_down_seconds <= 0.0)
    throw ConfigError("ChaosScenario: flap_down must be > 0 when flap_mtbf is set");
  check_probability(limp_fraction, "limp_fraction");
  check_nonnegative(limp_latency_seconds, "limp_latency");
  if (limp_fraction > 0.0 && limp_latency_seconds <= 0.0)
    throw ConfigError("ChaosScenario: limp_latency must be > 0 when limp_fraction is set");
  if (enabled() && horizon_seconds <= 0.0)
    throw ConfigError(
        "ChaosScenario: an enabled scenario needs horizon > 0 so the fault "
        "processes terminate");
}

ChaosScenario ChaosScenario::parse(std::string_view text) {
  ChaosScenario scenario;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    std::string_view token =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    pos = comma == std::string_view::npos ? text.size() + 1 : comma + 1;
    if (token.empty()) {
      if (first) break;  // empty spec = inert scenario
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      // A bare word: preset name, only meaningful as the first token.
      if (!first)
        throw ConfigError("ChaosScenario: preset '" + std::string(token) +
                          "' must come first in the spec");
      if (token == "none") scenario = ChaosScenario{};
      else if (token == "calm") scenario = calm_preset();
      else if (token == "storm") scenario = storm_preset();
      else
        throw ConfigError("ChaosScenario: unknown preset '" + std::string(token) +
                          "' (try none, calm, storm)");
    } else {
      const std::string_view key = token.substr(0, eq);
      const double value = parse_double(key, token.substr(eq + 1));
      if (!apply_key(scenario, key, value))
        throw ConfigError("ChaosScenario: unknown key '" + std::string(key) +
                          "' (valid keys: " + kValidKeys + ")");
    }
    first = false;
  }
  scenario.validate();
  return scenario;
}

std::string ChaosScenario::to_string() const {
  char buffer[768];
  std::snprintf(buffer, sizeof(buffer),
                "mtbf=%g,shape=%g,mttr=%g,repair_p=%g,reboot_p=%g,boot_failure_p=%g,"
                "outage_mtbf=%g,outage_mttr=%g,staleness=%g,horizon=%g,"
                "stall_mtbf=%g,stall=%g,flap_mtbf=%g,flap_down=%g,"
                "limp_fraction=%g,limp_latency=%g",
                mtbf_seconds, weibull_shape, mttr_seconds, repair_probability,
                reboot_probability, boot_failure_probability, cluster_outage_mtbf,
                cluster_outage_mttr, staleness_seconds, horizon_seconds,
                stall_mtbf_seconds, stall_seconds, flap_mtbf_seconds, flap_down_seconds,
                limp_fraction, limp_latency_seconds);
  return buffer;
}

}  // namespace greensched::chaos
