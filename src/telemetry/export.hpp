// Exporters for collected telemetry.
//
//   * Chrome trace_event JSON — load in chrome://tracing or Perfetto
//     (https://ui.perfetto.dev).  Timestamps are *simulated* microseconds
//     so the trace lines up with the paper's figures; the measured
//     wall-clock cost of each span rides along in args.wall_us.
//   * CSV — one row per event, for ad-hoc analysis.
//   * Prometheus text exposition — counters, gauges and histograms in
//     the standard scrape format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace greensched::telemetry {

/// Writes `{"traceEvents":[...]}`.  `collector` resolves run-context
/// labels; pass the collector the events came from.
void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events,
                        const TraceCollector& collector);

/// One CSV row per event: name, category, phase, context, thread,
/// sim_begin_s, sim_dur_s, wall_us, id, detail.
void write_trace_csv(std::ostream& out, const std::vector<TraceEvent>& events,
                     const TraceCollector& collector);

/// Prometheus text exposition (metric names are sanitized to
/// [a-zA-Z0-9_] and prefixed "greensched_").
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);

/// JSON string escaping shared by the exporters (and handy in tests).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace greensched::telemetry
