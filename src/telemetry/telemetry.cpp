#include "telemetry/telemetry.hpp"

namespace greensched::telemetry {

std::atomic<bool> Telemetry::enabled_{false};

namespace {

thread_local double t_sim_now = 0.0;

std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Trace capacity applied to the collector on first construction; kept
/// simple because enable() runs before any recording thread exists.
std::atomic<std::size_t> g_trace_capacity{1u << 16};

BuiltinMetrics register_builtin(MetricRegistry& registry) {
  BuiltinMetrics b;
  b.requests_submitted = registry.counter("diet.requests_submitted");
  b.estimations = registry.counter("diet.estimations");
  b.aggregations = registry.counter("diet.aggregations");
  b.elections = registry.counter("diet.elections");
  b.elections_unplaced = registry.counter("diet.elections_unplaced");
  b.tasks_started = registry.counter("diet.tasks_started");
  b.tasks_completed = registry.counter("diet.tasks_completed");
  b.tasks_failed = registry.counter("diet.tasks_failed");
  b.tasks_lost = registry.counter("diet.tasks_lost");
  b.retries = registry.counter("diet.retries");
  b.failures_skipped = registry.counter("diet.failures_skipped");
  b.estimation_cache_hits = registry.counter("diet.estimation_cache_hits");
  b.estimation_cache_misses = registry.counter("diet.estimation_cache_misses");
  b.estimation_epoch_bumps = registry.counter("diet.estimation_epoch_bumps");
  b.serving_sharded_collects = registry.counter("diet.serving_sharded_collects");
  b.serving_batches = registry.counter("diet.serving_batches");
  b.serving_batched_requests = registry.counter("diet.serving_batched_requests");
  b.chaos_crashes = registry.counter("chaos.crashes");
  b.chaos_cluster_outages = registry.counter("chaos.cluster_outages");
  b.chaos_boot_failures = registry.counter("chaos.boot_failures");
  b.chaos_stale_notifications = registry.counter("chaos.stale_notifications");
  b.chaos_stalls = registry.counter("chaos.stalls");
  b.chaos_flaps = registry.counter("chaos.flaps");
  b.chaos_limping_seds = registry.counter("chaos.limping_seds");
  b.estimation_deadline_misses = registry.counter("diet.estimation_deadline_misses");
  b.estimation_hedges = registry.counter("diet.estimation_hedges");
  b.estimation_hedge_rescues = registry.counter("diet.estimation_hedge_rescues");
  b.breaker_quarantines = registry.counter("diet.breaker_quarantines");
  b.breaker_probes = registry.counter("diet.breaker_probes");
  b.quarantined_skips = registry.counter("diet.quarantined_skips");
  b.provisioner_ticks = registry.counter("green.provisioner_ticks");
  b.provisioner_degraded = registry.counter("green.provisioner_degraded");
  b.provisioner_cap_clamped = registry.counter("green.provisioner_cap_clamped");
  b.provisioner_boots_ordered = registry.counter("green.provisioner_boots_ordered");
  b.provisioner_shutdowns_ordered = registry.counter("green.provisioner_shutdowns_ordered");
  b.planning_writes = registry.counter("green.planning_writes");
  b.rule_firings = registry.counter("green.rule_firings");
  b.ramp_up_steps = registry.counter("green.ramp_up_steps");
  b.ramp_down_steps = registry.counter("green.ramp_down_steps");
  b.tasks_migrated_out = registry.counter("diet.tasks_migrated_out");
  b.migrations_started = registry.counter("migrate.started");
  b.migrations_committed = registry.counter("migrate.committed");
  b.migrations_aborted = registry.counter("migrate.aborted");
  b.provisioner_drain_requests = registry.counter("green.provisioner_drain_requests");
  b.node_boots = registry.counter("cluster.node_boots");
  b.node_shutdowns = registry.counter("cluster.node_shutdowns");
  b.node_failures = registry.counter("cluster.node_failures");
  b.node_repairs = registry.counter("cluster.node_repairs");
  b.pstate_transitions = registry.counter("cluster.pstate_transitions");
  // Tier names mirror sla/tier.cpp (0 = best-effort .. 3 = gold).
  const char* tier_names[BuiltinMetrics::kSlaTiers] = {"best-effort", "bronze", "silver",
                                                       "gold"};
  for (std::size_t t = 0; t < BuiltinMetrics::kSlaTiers; ++t) {
    const std::string tier = tier_names[t];
    b.sla_admitted[t] = registry.counter("sla.admitted." + tier);
    b.sla_deferred[t] = registry.counter("sla.deferred." + tier);
    b.sla_rejected[t] = registry.counter("sla.rejected." + tier);
    b.sla_violated[t] = registry.counter("sla.violated." + tier);
  }
  b.candidate_nodes = registry.gauge("green.candidate_nodes");
  b.electricity_cost = registry.gauge("green.electricity_cost");
  b.provisioner_target_gap = registry.gauge("green.provisioner_target_gap");
  b.sla_revenue_total = registry.gauge("sla.revenue_total");
  b.task_run_seconds = registry.histogram(
      "diet.task_run_seconds", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  b.election_candidates =
      registry.histogram("diet.election_candidates", {1, 2, 4, 8, 16, 32, 64, 128});
  b.election_eligible =
      registry.histogram("diet.election_eligible", {1, 2, 4, 8, 16, 32, 64, 128});
  // Log-spaced from 1 us to 100 ms: a 10k-SED serial election sits around
  // a millisecond, batched rounds around tens of milliseconds.
  b.election_wall_seconds = registry.histogram(
      "diet.election_wall_seconds",
      {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1});
  // Simulated seconds, log-spaced: a healthy SED answers at 0, a stalled
  // or limping one in tens of seconds.
  b.estimation_latency = registry.histogram(
      "diet.estimation_latency", {0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300});
  return b;
}

}  // namespace

void Telemetry::enable(TelemetryConfig config) {
  g_trace_capacity.store(config.trace_capacity_per_thread, std::memory_order_relaxed);
  // Force registration before the flag flips so enabled-path code never
  // pays the registration mutex.
  (void)builtin();
  (void)tracing();
  enabled_.store(true, std::memory_order_relaxed);
}

void Telemetry::reset() noexcept {
  metrics().reset();
  tracing().clear();
}

MetricRegistry& Telemetry::metrics() {
  static MetricRegistry registry;
  return registry;
}

TraceCollector& Telemetry::tracing() {
  static TraceCollector collector(g_trace_capacity.load(std::memory_order_relaxed));
  return collector;
}

const BuiltinMetrics& Telemetry::builtin() {
  static const BuiltinMetrics b = register_builtin(metrics());
  return b;
}

void Telemetry::set_sim_now(double seconds) noexcept { t_sim_now = seconds; }

double Telemetry::sim_now() noexcept { return t_sim_now; }

void Telemetry::span(const char* name, const char* category, double sim_begin,
                     double sim_end, std::uint64_t id, std::string_view detail) noexcept {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = TracePhase::kComplete;
  event.sim_begin = sim_begin;
  event.sim_end = sim_end;
  event.wall_begin_ns = wall_now_ns();
  event.id = id;
  event.set_detail(detail);
  tracing().record(event);
}

void Telemetry::instant(const char* name, const char* category, double sim_at,
                        std::uint64_t id, std::string_view detail) noexcept {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = TracePhase::kInstant;
  event.sim_begin = sim_at;
  event.sim_end = sim_at;
  event.wall_begin_ns = wall_now_ns();
  event.id = id;
  event.set_detail(detail);
  tracing().record(event);
}

void TraceSpan::finish() noexcept {
  // Disabled mid-span: drop the event rather than record half a story.
  if (!Telemetry::enabled()) return;
  const auto wall_end = std::chrono::steady_clock::now();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.phase = TracePhase::kComplete;
  event.sim_begin = sim_begin_;
  event.sim_end = Telemetry::sim_now();
  event.wall_begin_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_begin_.time_since_epoch())
          .count());
  event.wall_dur_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end - wall_begin_).count());
  event.id = id_;
  event.set_detail(detail_);
  Telemetry::tracing().record(event);
}

}  // namespace greensched::telemetry
