// MetricRegistry: named counters, gauges and fixed-bucket histograms.
//
// Hot-path writes go to *lock-free thread-local shards*: each recording
// thread owns a slab of relaxed atomics that only it writes, so the
// `--jobs N` experiment engine can record from every worker without a
// shared cache line, let alone a lock.  A scrape (`snapshot()`) merges
// the shards; counter and bucket totals are integral, so the merged
// values are bit-identical no matter how the work was partitioned across
// threads — the same determinism contract the sweep engine gives for
// results.  Registration (name -> id) is mutex-guarded but happens once
// per metric, never on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace greensched::telemetry {

/// Capacity limits: shards are fixed-size slabs so they can be merged
/// while other threads keep writing (no reallocation ever happens).
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxGauges = 32;
inline constexpr std::size_t kMaxHistograms = 32;
/// Finite buckets per histogram (an overflow bucket is added on top).
inline constexpr std::size_t kMaxHistogramBuckets = 32;

struct CounterId {
  std::size_t index = static_cast<std::size_t>(-1);
  [[nodiscard]] constexpr bool valid() const noexcept {
    return index != static_cast<std::size_t>(-1);
  }
};

struct GaugeId {
  std::size_t index = static_cast<std::size_t>(-1);
  [[nodiscard]] constexpr bool valid() const noexcept {
    return index != static_cast<std::size_t>(-1);
  }
};

struct HistogramId {
  std::size_t index = static_cast<std::size_t>(-1);
  [[nodiscard]] constexpr bool valid() const noexcept {
    return index != static_cast<std::size_t>(-1);
  }
};

/// Merged view of one counter.
struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

/// Merged view of one gauge (last relaxed store wins).
struct GaugeValue {
  std::string name;
  double value = 0.0;
  bool set = false;  ///< false until the first set()
};

/// Merged view of one histogram.  `counts` has one entry per upper bound
/// plus a final overflow bucket; bucket i holds observations v with
/// bounds[i-1] < v <= bounds[i] (Prometheus "le" semantics).
struct HistogramValue {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< size bounds.size() + 1
  double sum = 0.0;

  [[nodiscard]] std::uint64_t total_count() const noexcept;
  /// Quantile estimate by linear interpolation inside the bucket that
  /// holds the q-th observation.  Assumes non-negative observations
  /// (bucket 0 spans [0, bounds[0]]); observations above the last bound
  /// report the last bound.  Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] const CounterValue* find_counter(const std::string& name) const;
  [[nodiscard]] const HistogramValue* find_histogram(const std::string& name) const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // --- registration (mutex-guarded, get-or-create by name) ---
  CounterId counter(const std::string& name);
  GaugeId gauge(const std::string& name);
  /// `upper_bounds` must be non-empty, strictly increasing and no longer
  /// than kMaxHistogramBuckets; re-registering a name requires identical
  /// bounds.  Throws common::ConfigError otherwise.
  HistogramId histogram(const std::string& name, std::vector<double> upper_bounds);

  // --- hot path (lock-free: one relaxed RMW on a thread-owned slab) ---
  void add(CounterId id, std::uint64_t delta = 1) noexcept;
  void set(GaugeId id, double value) noexcept;
  void observe(HistogramId id, double value) noexcept;

  // --- scrape ---
  /// Merges every shard.  Safe to call while other threads record:
  /// relaxed loads may miss in-flight increments but never tear.
  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zeroes every shard and gauge; registrations survive.  Call only
  /// while no other thread is recording.
  void reset() noexcept;

  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] std::size_t counter_count() const;

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<std::uint64_t>,
               kMaxHistograms*(kMaxHistogramBuckets + 1)>
        buckets{};
    std::array<std::atomic<double>, kMaxHistograms> sums{};
    std::thread::id owner;
  };

  [[nodiscard]] Shard& local_shard() noexcept;
  Shard& register_shard();

  const std::uint64_t instance_ = next_instance();
  static std::uint64_t next_instance() noexcept;

  mutable std::mutex mutex_;  ///< registration + shard list only
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  /// Bounds live in fixed slots published by a release-store of the
  /// bucket count, so `observe` can read them without the mutex.
  std::array<std::array<double, kMaxHistogramBuckets>, kMaxHistograms> histogram_bounds_{};
  std::array<std::atomic<std::size_t>, kMaxHistograms> histogram_bucket_counts_{};
  std::deque<std::unique_ptr<Shard>> shards_;  ///< stable addresses
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::array<std::atomic<bool>, kMaxGauges> gauge_set_{};
};

}  // namespace greensched::telemetry
