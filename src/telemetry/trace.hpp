// Trace recording: per-thread ring buffers of span/instant events.
//
// A `TraceEvent` carries *both* clocks: simulated time (the DES timeline
// the paper's figures are drawn on) and wall time (what the code actually
// cost).  Each recording thread owns a `TraceBuffer` — a fixed-capacity
// `common::RingBuffer` that overwrites the oldest events instead of
// allocating, so a multi-hour Fig. 9 run keeps a bounded recent window.
// The `TraceCollector` owns every thread's buffer and merges them for
// export; merging requires quiescence (no thread recording), which the
// callers guarantee by exporting after a run / after the pool drained.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/ring_buffer.hpp"

namespace greensched::telemetry {

/// Event phases, mirroring the Chrome trace_event vocabulary.
enum class TracePhase : char {
  kComplete = 'X',  ///< a span with a duration
  kInstant = 'i',   ///< a point event
};

struct TraceEvent {
  const char* name = "";      ///< must point at static storage (a literal)
  const char* category = "";  ///< must point at static storage (a literal)
  TracePhase phase = TracePhase::kInstant;
  std::uint16_t context = 0;  ///< run-context id (0 = none)
  std::uint32_t thread = 0;   ///< recording thread ordinal
  double sim_begin = 0.0;     ///< simulated seconds
  double sim_end = 0.0;
  std::uint64_t wall_begin_ns = 0;
  std::uint64_t wall_dur_ns = 0;
  std::uint64_t id = 0;  ///< task/node/request id (kNoId = none)
  /// Small annotation (server name, policy, ...) copied at record time so
  /// the event never dangles into simulation objects.
  char detail[24] = {};

  static constexpr std::uint64_t kNoId = ~std::uint64_t{0};

  void set_detail(std::string_view text) noexcept;
  [[nodiscard]] std::string_view detail_view() const noexcept;
};

/// One thread's ring of events.  Writes are owner-thread only; reads
/// (drain) happen under quiescence.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : ring_(capacity) {}

  void push(const TraceEvent& event) noexcept {
    ring_.push(event);
    ++recorded_;
  }

  /// Events pushed since construction/clear, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events lost to ring overwrites.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return recorded_ - ring_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.capacity(); }

  /// Appends the retained events, oldest first.
  void drain_to(std::vector<TraceEvent>& out) const {
    ring_.for_each([&out](const TraceEvent& e) { out.push_back(e); });
  }

  void clear() noexcept {
    ring_.clear();
    recorded_ = 0;
  }

 private:
  common::RingBuffer<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
};

/// Owns one TraceBuffer per recording thread plus the run-context table.
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t capacity_per_thread = 1u << 16);
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// This thread's buffer (registered on first use).
  [[nodiscard]] TraceBuffer& local_buffer();

  /// Records a complete span ('X') or instant ('i') into the local
  /// buffer, stamping thread ordinal and current run context.
  void record(TraceEvent event) noexcept;

  // --- run contexts (grid-point labels in sweeps) ---
  /// Get-or-create a context id for `label` (id 0 is the empty label).
  std::uint16_t context_id(std::string_view label);
  [[nodiscard]] std::string context_label(std::uint16_t id) const;
  /// Installs `id` as this thread's current context; returns the
  /// previous one (restore it when the scope ends).
  static std::uint16_t exchange_context(std::uint16_t id) noexcept;
  [[nodiscard]] static std::uint16_t current_context() noexcept;

  // --- merge / maintenance (quiescent callers only) ---
  /// All retained events from every thread, in recording order per
  /// thread, sorted by (sim_begin, wall_begin).
  [[nodiscard]] std::vector<TraceEvent> collect() const;
  /// Total events pushed / lost to ring overwrites, across threads.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  void clear() noexcept;

  [[nodiscard]] std::size_t buffer_count() const;
  [[nodiscard]] std::size_t capacity_per_thread() const noexcept { return capacity_; }

 private:
  struct NamedBuffer {
    TraceBuffer buffer;
    std::thread::id owner;
    std::uint32_t ordinal;
    explicit NamedBuffer(std::size_t capacity, std::thread::id who, std::uint32_t n)
        : buffer(capacity), owner(who), ordinal(n) {}
  };

  NamedBuffer& register_buffer();

  const std::uint64_t instance_;
  std::size_t capacity_;
  mutable std::mutex mutex_;  ///< buffer list + context table only
  std::deque<std::unique_ptr<NamedBuffer>> buffers_;
  std::vector<std::string> context_labels_;  ///< index = id; [0] = ""
};

}  // namespace greensched::telemetry
