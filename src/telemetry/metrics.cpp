#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace greensched::telemetry {

namespace {

/// Thread-local cache of "my shard in that registry".  Keyed by a unique
/// per-instance id so a registry destroyed and another constructed at the
/// same address can never alias.
struct ShardCache {
  std::uint64_t instance = 0;
  void* shard = nullptr;
};
thread_local ShardCache t_shard_cache;

}  // namespace

std::uint64_t MetricRegistry::next_instance() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

MetricRegistry::~MetricRegistry() {
  // Invalidate the calling thread's cache; other threads' caches cannot
  // match a future registry because instance ids are never reused.
  if (t_shard_cache.instance == instance_) t_shard_cache = ShardCache{};
}

MetricRegistry::Shard& MetricRegistry::local_shard() noexcept {
  if (t_shard_cache.instance == instance_) {
    return *static_cast<Shard*>(t_shard_cache.shard);
  }
  return register_shard();
}

MetricRegistry::Shard& MetricRegistry::register_shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  // A thread that alternated between registries re-finds its old shard
  // instead of leaking a new one.
  const std::thread::id self = std::this_thread::get_id();
  for (auto& shard : shards_) {
    if (shard->owner == self) {
      t_shard_cache = ShardCache{instance_, shard.get()};
      return *shard;
    }
  }
  shards_.push_back(std::make_unique<Shard>());
  shards_.back()->owner = self;
  t_shard_cache = ShardCache{instance_, shards_.back().get()};
  return *shards_.back();
}

CounterId MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return CounterId{i};
  }
  if (counter_names_.size() >= kMaxCounters)
    throw common::ConfigError("MetricRegistry: counter capacity exhausted");
  counter_names_.push_back(name);
  return CounterId{counter_names_.size() - 1};
}

GaugeId MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) return GaugeId{i};
  }
  if (gauge_names_.size() >= kMaxGauges)
    throw common::ConfigError("MetricRegistry: gauge capacity exhausted");
  gauge_names_.push_back(name);
  return GaugeId{gauge_names_.size() - 1};
}

HistogramId MetricRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  if (upper_bounds.empty())
    throw common::ConfigError("MetricRegistry: histogram '" + name + "' has no buckets");
  if (upper_bounds.size() > kMaxHistogramBuckets)
    throw common::ConfigError("MetricRegistry: histogram '" + name + "' has too many buckets");
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    if (!(upper_bounds[i - 1] < upper_bounds[i]))
      throw common::ConfigError("MetricRegistry: histogram '" + name +
                                "' bounds must be strictly increasing");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] == name) {
      const std::size_t n = histogram_bucket_counts_[i].load(std::memory_order_relaxed);
      const bool same = n == upper_bounds.size() &&
                        std::equal(upper_bounds.begin(), upper_bounds.end(),
                                   histogram_bounds_[i].begin());
      if (!same)
        throw common::ConfigError("MetricRegistry: histogram '" + name +
                                  "' re-registered with different bounds");
      return HistogramId{i};
    }
  }
  if (histogram_names_.size() >= kMaxHistograms)
    throw common::ConfigError("MetricRegistry: histogram capacity exhausted");
  histogram_names_.push_back(name);
  const std::size_t index = histogram_names_.size() - 1;
  std::copy(upper_bounds.begin(), upper_bounds.end(), histogram_bounds_[index].begin());
  // Publish: observers acquire the count and then read the plain bounds.
  histogram_bucket_counts_[index].store(upper_bounds.size(), std::memory_order_release);
  return HistogramId{index};
}

void MetricRegistry::add(CounterId id, std::uint64_t delta) noexcept {
  if (!id.valid() || id.index >= kMaxCounters) return;
  local_shard().counters[id.index].fetch_add(delta, std::memory_order_relaxed);
}

void MetricRegistry::set(GaugeId id, double value) noexcept {
  if (!id.valid() || id.index >= kMaxGauges) return;
  gauges_[id.index].store(value, std::memory_order_relaxed);
  gauge_set_[id.index].store(true, std::memory_order_relaxed);
}

void MetricRegistry::observe(HistogramId id, double value) noexcept {
  if (!id.valid() || id.index >= kMaxHistograms) return;
  // Acquire pairs with the release in histogram(): the bounds this count
  // covers are fully written before it becomes visible.
  const std::size_t n = histogram_bucket_counts_[id.index].load(std::memory_order_acquire);
  if (n == 0) return;
  const auto& bounds = histogram_bounds_[id.index];
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.begin() + n, value) - bounds.begin());
  Shard& shard = local_shard();
  shard.buckets[id.index * (kMaxHistogramBuckets + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  shard.sums[id.index].fetch_add(value, std::memory_order_relaxed);
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.resize(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    out.counters[i].name = counter_names_[i];
  }
  out.gauges.resize(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    out.gauges[i].name = gauge_names_[i];
    out.gauges[i].value = gauges_[i].load(std::memory_order_relaxed);
    out.gauges[i].set = gauge_set_[i].load(std::memory_order_relaxed);
  }
  out.histograms.resize(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    const std::size_t n = histogram_bucket_counts_[i].load(std::memory_order_relaxed);
    out.histograms[i].name = histogram_names_[i];
    out.histograms[i].bounds.assign(histogram_bounds_[i].begin(),
                                    histogram_bounds_[i].begin() + n);
    out.histograms[i].counts.assign(n + 1, 0);
  }
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < out.counters.size(); ++i) {
      out.counters[i].value += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < out.histograms.size(); ++h) {
      HistogramValue& hv = out.histograms[h];
      for (std::size_t b = 0; b < hv.counts.size(); ++b) {
        hv.counts[b] +=
            shard->buckets[h * (kMaxHistogramBuckets + 1) + b].load(std::memory_order_relaxed);
      }
      hv.sum += shard->sums[h].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void MetricRegistry::reset() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& b : shard->buckets) b.store(0, std::memory_order_relaxed);
    for (auto& s : shard->sums) s.store(0.0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  for (auto& f : gauge_set_) f.store(false, std::memory_order_relaxed);
}

std::size_t MetricRegistry::shard_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_.size();
}

std::size_t MetricRegistry::counter_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_.size();
}

std::uint64_t HistogramValue::total_count() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return total;
}

double HistogramValue::quantile(double q) const {
  const std::uint64_t total = total_count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The rank of the target observation, 1-based.
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b >= bounds.size()) return bounds.back();  // overflow bucket
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = bounds[b];
    const double within = (rank - before) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * within;
  }
  return bounds.back();
}

const CounterValue* MetricsSnapshot::find_counter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramValue* MetricsSnapshot::find_histogram(const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace greensched::telemetry
