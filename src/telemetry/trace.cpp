#include "telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/error.hpp"

namespace greensched::telemetry {

void TraceEvent::set_detail(std::string_view text) noexcept {
  const std::size_t n = std::min(text.size(), sizeof(detail) - 1);
  std::memcpy(detail, text.data(), n);
  detail[n] = '\0';
}

std::string_view TraceEvent::detail_view() const noexcept {
  return std::string_view(detail);
}

namespace {

struct BufferCache {
  std::uint64_t instance = 0;
  void* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;
thread_local std::uint16_t t_context = 0;

std::uint64_t next_collector_instance() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceCollector::TraceCollector(std::size_t capacity_per_thread)
    : instance_(next_collector_instance()), capacity_(capacity_per_thread) {
  if (capacity_ == 0)
    throw common::ConfigError("TraceCollector: capacity must be positive");
  context_labels_.push_back("");  // id 0: no context
}

TraceCollector::~TraceCollector() {
  if (t_buffer_cache.instance == instance_) t_buffer_cache = BufferCache{};
}

TraceBuffer& TraceCollector::local_buffer() {
  if (t_buffer_cache.instance == instance_) {
    return static_cast<NamedBuffer*>(t_buffer_cache.buffer)->buffer;
  }
  return register_buffer().buffer;
}

TraceCollector::NamedBuffer& TraceCollector::register_buffer() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id self = std::this_thread::get_id();
  for (auto& buffer : buffers_) {
    if (buffer->owner == self) {
      t_buffer_cache = BufferCache{instance_, buffer.get()};
      return *buffer;
    }
  }
  buffers_.push_back(std::make_unique<NamedBuffer>(
      capacity_, self, static_cast<std::uint32_t>(buffers_.size())));
  t_buffer_cache = BufferCache{instance_, buffers_.back().get()};
  return *buffers_.back();
}

void TraceCollector::record(TraceEvent event) noexcept {
  NamedBuffer* named;
  if (t_buffer_cache.instance == instance_) {
    named = static_cast<NamedBuffer*>(t_buffer_cache.buffer);
  } else {
    named = &register_buffer();
  }
  event.thread = named->ordinal;
  event.context = t_context;
  named->buffer.push(event);
}

std::uint16_t TraceCollector::context_id(std::string_view label) {
  if (label.empty()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < context_labels_.size(); ++i) {
    if (context_labels_[i] == label) return static_cast<std::uint16_t>(i);
  }
  if (context_labels_.size() >= 0xFFFF)
    throw common::ConfigError("TraceCollector: run-context table exhausted");
  context_labels_.emplace_back(label);
  return static_cast<std::uint16_t>(context_labels_.size() - 1);
}

std::string TraceCollector::context_label(std::uint16_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= context_labels_.size()) return "";
  return context_labels_[id];
}

std::uint16_t TraceCollector::exchange_context(std::uint16_t id) noexcept {
  const std::uint16_t previous = t_context;
  t_context = id;
  return previous;
}

std::uint16_t TraceCollector::current_context() noexcept { return t_context; }

std::vector<TraceEvent> TraceCollector::collect() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers_) buffer->buffer.drain_to(out);
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.sim_begin != b.sim_begin) return a.sim_begin < b.sim_begin;
    return a.wall_begin_ns < b.wall_begin_ns;
  });
  return out;
}

std::uint64_t TraceCollector::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->buffer.recorded();
  return total;
}

std::uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->buffer.dropped();
  return total;
}

void TraceCollector::clear() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) buffer->buffer.clear();
}

std::size_t TraceCollector::buffer_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

}  // namespace greensched::telemetry
