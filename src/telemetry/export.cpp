#include "telemetry/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>

#include "common/csv.hpp"

namespace greensched::telemetry {

namespace {

/// Formats a double the way JSON requires (no inf/nan, no locale).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events,
                        const TraceCollector& collector) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    const double ts_us = e.sim_begin * 1e6;
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"" << json_escape(e.category)
        << "\",\"ph\":\"" << static_cast<char>(e.phase) << "\",\"ts\":" << json_number(ts_us)
        << ",\"pid\":1,\"tid\":" << e.thread;
    if (e.phase == TracePhase::kComplete) {
      const double dur_us = (e.sim_end - e.sim_begin) * 1e6;
      out << ",\"dur\":" << json_number(dur_us < 0.0 ? 0.0 : dur_us);
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"args\":{\"wall_us\":" << json_number(static_cast<double>(e.wall_dur_ns) / 1e3);
    if (e.id != TraceEvent::kNoId) out << ",\"id\":" << e.id;
    if (!e.detail_view().empty())
      out << ",\"detail\":\"" << json_escape(e.detail_view()) << "\"";
    if (e.context != 0)
      out << ",\"run\":\"" << json_escape(collector.context_label(e.context)) << "\"";
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_trace_csv(std::ostream& out, const std::vector<TraceEvent>& events,
                     const TraceCollector& collector) {
  common::CsvWriter csv(out);
  csv.row({"name", "category", "phase", "run", "thread", "sim_begin_s", "sim_dur_s",
           "wall_us", "id", "detail"});
  for (const TraceEvent& e : events) {
    csv.cell(std::string(e.name))
        .cell(std::string(e.category))
        .cell(std::string(1, static_cast<char>(e.phase)))
        .cell(collector.context_label(e.context))
        .cell(static_cast<std::size_t>(e.thread))
        .cell(e.sim_begin)
        .cell(e.sim_end - e.sim_begin)
        .cell(static_cast<double>(e.wall_dur_ns) / 1e3)
        .cell(e.id == TraceEvent::kNoId ? std::string() : std::to_string(e.id))
        .cell(std::string(e.detail_view()));
    csv.end_row();
  }
}

namespace {

std::string prometheus_name(std::string_view name) {
  std::string out = "greensched_";
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

std::string prometheus_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const CounterValue& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    out << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const GaugeValue& g : snapshot.gauges) {
    if (!g.set) continue;
    const std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n" << name << " " << prometheus_number(g.value)
        << "\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += h.counts[b];
      out << name << "_bucket{le=\"" << prometheus_number(h.bounds[b]) << "\"} " << cumulative
          << "\n";
    }
    cumulative += h.counts.back();
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << name << "_sum " << prometheus_number(h.sum) << "\n";
    out << name << "_count " << cumulative << "\n";
  }
}

}  // namespace greensched::telemetry
