// Telemetry facade: the one switch the instrumented hot paths check.
//
// Instrumentation all over the stack (client submit, agent propagation,
// SED estimation, aggregation, election, execution, completion, the
// provisioner's autonomic loop, node power-state transitions) is gated
// behind `Telemetry::enabled()` — a single relaxed atomic load — so the
// disabled-mode overhead is a branch on a hot cached flag, ~zero
// (`bench_micro_telemetry` enforces < 2% on a whole run).  Enabling never
// changes behaviour: instrumentation only *reads* simulation state and
// never touches an Rng, so scheduling decisions and energy totals are
// bit-identical with telemetry on or off (a unit test guards this).
//
// Like `common::Logger`, the telemetry state is process-wide and
// thread-safe; per-run separation inside a sweep comes from run contexts
// (`ScopedRunContext`), not from per-run instances.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace greensched::telemetry {

/// Ids of the metrics the built-in instrumentation records, registered
/// once in the global registry.  Names follow "layer.metric".
struct BuiltinMetrics {
  /// SLA tier count mirrored from workload::kSlaTierCount (the layers do
  /// not see each other; a static_assert in diet/client.cpp pins them).
  static constexpr std::size_t kSlaTiers = 4;

  // request lifecycle (diet)
  CounterId requests_submitted;
  CounterId estimations;
  CounterId aggregations;
  CounterId elections;
  CounterId elections_unplaced;  ///< scheduling rounds electing nobody
  CounterId tasks_started;
  CounterId tasks_completed;
  CounterId tasks_failed;
  CounterId tasks_lost;        ///< requests abandoned (retry off / exhausted)
  CounterId retries;           ///< backoff re-dispatch attempts
  CounterId failures_skipped;  ///< injected crashes that found the node OFF/FAILED
  // dispatch fast path (diet)
  CounterId estimation_cache_hits;    ///< estimations served from the SED cache
  CounterId estimation_cache_misses;  ///< estimations rebuilt from scratch
  CounterId estimation_epoch_bumps;   ///< SED-side state-epoch invalidations
  // sharded serving engine (diet)
  CounterId serving_sharded_collects;  ///< collects fanned out to shard workers
  CounterId serving_batches;           ///< submit_batch rounds (one collect each)
  CounterId serving_batched_requests;  ///< requests elected through batches
  // chaos fault processes (chaos)
  CounterId chaos_crashes;
  CounterId chaos_cluster_outages;
  CounterId chaos_boot_failures;
  CounterId chaos_stale_notifications;
  // gray failures: slow-not-dead processes + the collect gate (chaos/diet)
  CounterId chaos_stalls;        ///< estimation stalls injected
  CounterId chaos_flaps;         ///< crash-and-auto-recover cycles started
  CounterId chaos_limping_seds;  ///< SEDs marked permanently slow at start
  CounterId estimation_deadline_misses;  ///< estimations slower than the budget
  CounterId estimation_hedges;           ///< hedged re-requests issued
  CounterId estimation_hedge_rescues;    ///< hedges that made the candidate set
  CounterId breaker_quarantines;  ///< circuit-breaker open transitions
  CounterId breaker_probes;       ///< half-open probe elections
  CounterId quarantined_skips;    ///< estimations skipped on an open breaker
  // provisioner autonomic loop (green)
  CounterId provisioner_ticks;
  CounterId provisioner_degraded;  ///< checks with healthy pool below target
  CounterId provisioner_cap_clamped;  ///< checks whose target hit the external cap
  CounterId provisioner_boots_ordered;      ///< power-on commands issued
  CounterId provisioner_shutdowns_ordered;  ///< power-off commands issued
  CounterId planning_writes;
  CounterId rule_firings;
  CounterId ramp_up_steps;
  CounterId ramp_down_steps;
  // live migration (diet SED endpoints + migrate controller + green drain)
  CounterId tasks_migrated_out;    ///< checkpointed detachments at a source SED
  CounterId migrations_started;    ///< INTENT frames journaled
  CounterId migrations_committed;  ///< transfers that re-queued at the target
  CounterId migrations_aborted;    ///< transfers voided (task done / target gone)
  CounterId provisioner_drain_requests;  ///< busy non-candidates handed to the hook
  // node power state machine (cluster)
  CounterId node_boots;
  CounterId node_shutdowns;
  CounterId node_failures;
  CounterId node_repairs;
  CounterId pstate_transitions;
  // sla admission control (diet client + sla controller), per tier
  CounterId sla_admitted[kSlaTiers];
  CounterId sla_deferred[kSlaTiers];
  CounterId sla_rejected[kSlaTiers];
  CounterId sla_violated[kSlaTiers];
  // gauges
  GaugeId candidate_nodes;
  GaugeId electricity_cost;
  GaugeId provisioner_target_gap;  ///< |strategy target - applied pool|
  GaugeId sla_revenue_total;       ///< running realized revenue
  // histograms
  HistogramId task_run_seconds;
  HistogramId election_candidates;
  HistogramId election_eligible;  ///< candidates surviving the provisioner filter
  /// Wall-clock seconds per scheduling round: one sample per submit_fast
  /// election, one per submit_batch round.  bench_macro_throughput reads
  /// its p50/p99 off the snapshot.
  HistogramId election_wall_seconds;
  /// Simulated seconds an estimation response took (gray stall + limp
  /// latency); one sample per gated estimation attempt.
  HistogramId estimation_latency;
};

struct TelemetryConfig {
  std::size_t trace_capacity_per_thread = 1u << 16;
};

class Telemetry {
 public:
  /// The hot-path guard: one relaxed atomic load.  Every instrumentation
  /// site checks this before touching the registry or collector.
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Turns recording on.  Re-enabling with a different trace capacity
  /// only affects buffers registered afterwards.
  static void enable(TelemetryConfig config = {});
  static void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  /// Drops recorded data (events, counters); registrations and the
  /// enabled flag survive.  Call only while no thread is recording.
  static void reset() noexcept;

  [[nodiscard]] static MetricRegistry& metrics();
  [[nodiscard]] static TraceCollector& tracing();
  [[nodiscard]] static const BuiltinMetrics& builtin();

  // --- simulated-time channel ---
  /// The DES loop stamps the executing event's time here (thread-local)
  /// so spans opened anywhere below know the simulated "now".
  static void set_sim_now(double seconds) noexcept;
  [[nodiscard]] static double sim_now() noexcept;

  // --- recording helpers (no-ops while disabled) ---
  /// A span with explicit simulated begin/end (task execution, a node
  /// boot): recorded once, at the moment it ends.
  static void span(const char* name, const char* category, double sim_begin, double sim_end,
                   std::uint64_t id = TraceEvent::kNoId,
                   std::string_view detail = {}) noexcept;
  /// A point event at one simulated instant.
  static void instant(const char* name, const char* category, double sim_at,
                      std::uint64_t id = TraceEvent::kNoId,
                      std::string_view detail = {}) noexcept;
  /// Counter/gauge/histogram shorthands.
  static void count(CounterId id, std::uint64_t delta = 1) noexcept {
    if (enabled()) metrics().add(id, delta);
  }
  static void gauge(GaugeId id, double value) noexcept {
    if (enabled()) metrics().set(id, value);
  }
  static void observe(HistogramId id, double value) noexcept {
    if (enabled()) metrics().observe(id, value);
  }

 private:
  static std::atomic<bool> enabled_;
};

/// RAII wall-clock span: measures the enclosed code block, stamped with
/// the simulated time it ran at.  Construction while disabled is a
/// relaxed load and a branch; nothing is recorded.
class TraceSpan {
 public:
  /// `name` and `category` must be string literals (static storage).
  TraceSpan(const char* name, const char* category,
            std::uint64_t id = TraceEvent::kNoId, std::string_view detail = {}) noexcept {
    if (!Telemetry::enabled()) return;
    active_ = true;
    name_ = name;
    category_ = category;
    id_ = id;
    detail_ = detail;
    sim_begin_ = Telemetry::sim_now();
    wall_begin_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() { if (active_) finish(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void finish() noexcept;

  bool active_ = false;
  const char* name_ = "";
  const char* category_ = "";
  std::uint64_t id_ = TraceEvent::kNoId;
  std::string_view detail_;
  double sim_begin_ = 0.0;
  std::chrono::steady_clock::time_point wall_begin_;
};

/// Labels every event this thread records while in scope (a sweep grid
/// point, typically) so exporters can split a merged collection into
/// per-run files.  No-op while telemetry is disabled.
class ScopedRunContext {
 public:
  explicit ScopedRunContext(std::string_view label) {
    if (!Telemetry::enabled()) return;
    active_ = true;
    previous_ = TraceCollector::exchange_context(Telemetry::tracing().context_id(label));
  }
  ~ScopedRunContext() {
    if (active_) TraceCollector::exchange_context(previous_);
  }
  ScopedRunContext(const ScopedRunContext&) = delete;
  ScopedRunContext& operator=(const ScopedRunContext&) = delete;

 private:
  bool active_ = false;
  std::uint16_t previous_ = 0;
};

}  // namespace greensched::telemetry

/// Counter shorthand for instrumentation sites: resolves the builtin id
/// only when telemetry is enabled.
#define GS_TCOUNT(field)                                                      \
  if (!::greensched::telemetry::Telemetry::enabled()) {                       \
  } else                                                                      \
    ::greensched::telemetry::Telemetry::metrics().add(                        \
        ::greensched::telemetry::Telemetry::builtin().field)

#define GS_TOBSERVE(field, value)                                             \
  if (!::greensched::telemetry::Telemetry::enabled()) {                       \
  } else                                                                      \
    ::greensched::telemetry::Telemetry::metrics().observe(                    \
        ::greensched::telemetry::Telemetry::builtin().field, (value))

#define GS_TGAUGE(field, value)                                               \
  if (!::greensched::telemetry::Telemetry::enabled()) {                       \
  } else                                                                      \
    ::greensched::telemetry::Telemetry::metrics().set(                        \
        ::greensched::telemetry::Telemetry::builtin().field, (value))
