#include "testbed/emulation.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace greensched::testbed {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// std::atomic<double> has no fetch_add until C++20's compare-exchange
// loop idiom; keep it explicit and portable.
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}
}  // namespace

std::uint64_t run_busy_task(const BusyTask& task) noexcept {
  // Successive additions, as in the paper's CPU-bound problem.  The
  // volatile accumulator stops the compiler from collapsing the loop.
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < task.additions; ++i) acc = acc + 1;
  return acc;
}

EmulatedNode::EmulatedNode(std::string name, cluster::NodeSpec spec,
                           std::chrono::milliseconds sample_period)
    : name_(std::move(name)), spec_(std::move(spec)), sample_period_(sample_period) {
  spec_.validate();
  epoch_ = Clock::now();
  if (sample_period_.count() <= 0)
    throw common::ConfigError("EmulatedNode: sample period must be positive");
  workers_.reserve(spec_.cores);
  for (unsigned i = 0; i < spec_.cores; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  sampler_ = std::thread([this] { sampler_loop(); });
}

EmulatedNode::~EmulatedNode() { shutdown(); }

bool EmulatedNode::submit(BusyTask task, std::function<void(double)> on_done) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return false;
    queue_.emplace_back(task, std::move(on_done));
  }
  cv_.notify_one();
  return true;
}

std::size_t EmulatedNode::queued() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

double EmulatedNode::instantaneous_power_watts() const noexcept {
  const unsigned busy = busy_workers_.load();
  if (busy == 0) return spec_.idle_watts.value();
  // Same active-floor model as cluster::Node: any busy worker wakes the
  // package to active_watts; extra workers scale toward peak.
  const double load = static_cast<double>(busy) / static_cast<double>(spec_.cores);
  return spec_.active_watts.value() +
         (spec_.peak_watts.value() - spec_.active_watts.value()) * load;
}

double EmulatedNode::sampled_energy_joules() const noexcept {
  // Integral so far plus the slice the sampler has not booked yet.
  const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch_);
  const double pending_seconds =
      static_cast<double>(now_ns.count() - last_sample_ns_.load(std::memory_order_acquire)) /
      1e9;
  return energy_joules_.load() +
         (pending_seconds > 0.0 ? instantaneous_power_watts() * pending_seconds : 0.0);
}

double EmulatedNode::measured_additions_per_second() const noexcept {
  const std::uint64_t n = rate_samples_.load();
  if (n == 0) return 0.0;
  return rate_sum_.load() / static_cast<double>(n);
}

void EmulatedNode::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  sampler_stop_.store(true, std::memory_order_release);
  if (sampler_.joinable()) sampler_.join();
}

void EmulatedNode::worker_loop() {
  for (;;) {
    std::pair<BusyTask, std::function<void(double)>> item;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_workers_.fetch_add(1);
    const Clock::time_point start = Clock::now();
    run_busy_task(item.first);
    const double elapsed = seconds_between(start, Clock::now());
    busy_workers_.fetch_sub(1);
    completed_.fetch_add(1);
    if (elapsed > 0.0) {
      atomic_add(rate_sum_, static_cast<double>(item.first.additions) / elapsed);
      rate_samples_.fetch_add(1);
    }
    if (item.second) item.second(elapsed);
  }
}

void EmulatedNode::sampler_loop() {
  Clock::time_point last = epoch_;
  auto book = [&](Clock::time_point now) {
    atomic_add(energy_joules_, instantaneous_power_watts() * seconds_between(last, now));
    last_sample_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_).count(),
        std::memory_order_release);
    last = now;
  };
  while (!sampler_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(sample_period_);
    book(Clock::now());
  }
  // Final slice so energy covers the node's full lifetime.
  book(Clock::now());
}

Emulation::Emulation(std::vector<std::pair<std::string, cluster::NodeSpec>> machines) {
  if (machines.empty()) throw common::ConfigError("Emulation: no machines");
  for (auto& [name, spec] : machines) {
    nodes_.push_back(std::make_unique<EmulatedNode>(name, spec));
  }
}

EmulationReport Emulation::run(BusyTask task, std::uint64_t task_count) {
  const Clock::time_point start = Clock::now();

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::uint64_t done = 0;
  std::vector<std::uint64_t> per_node(nodes_.size(), 0);

  for (std::uint64_t i = 0; i < task_count; ++i) {
    // GreenPerf-greedy live placement: lowest modeled watts-per-rate node
    // with a free worker; if all are saturated, the globally best node
    // queues it (its workers are the cheapest anyway).
    std::size_t best = 0;
    double best_key = std::numeric_limits<double>::infinity();
    std::size_t best_free = 0;
    double best_free_key = std::numeric_limits<double>::infinity();
    bool any_free = false;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      const auto& spec = nodes_[n]->spec();
      const double key = spec.peak_watts.value() / spec.total_flops().value();
      if (key < best_key) {
        best_key = key;
        best = n;
      }
      const bool has_free = nodes_[n]->busy_workers() + nodes_[n]->queued() < spec.cores;
      if (has_free && key < best_free_key) {
        best_free_key = key;
        best_free = n;
        any_free = true;
      }
    }
    const std::size_t chosen = any_free ? best_free : best;
    per_node[chosen] += 1;
    nodes_[chosen]->submit(task, [&](double) {
      std::lock_guard lock(done_mutex);
      ++done;
      done_cv.notify_one();
    });
  }

  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return done == task_count; });
  }

  EmulationReport report;
  report.tasks = task_count;
  report.wall_seconds = seconds_between(start, Clock::now());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    report.energy_joules += nodes_[n]->sampled_energy_joules();
    report.tasks_per_node.emplace_back(nodes_[n]->name(), per_node[n]);
  }
  return report;
}

}  // namespace greensched::testbed
