// Real-time testbed emulation.
//
// The paper validates on GRID'5000 with real machines; this module is the
// in-process analog: each emulated node is a pool of host threads that
// *really executes* CPU-bound addition loops (the paper's task), a
// background wattmeter thread samples the node's modeled power draw on a
// wall-clock period, and a tiny greedy scheduler places tasks by the same
// power/performance ranking the DES policies use.  It demonstrates that
// the middleware logic is not tied to the simulator — the estimation /
// ranking / election pipeline works against live measurements too.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node_spec.hpp"

namespace greensched::testbed {

/// A really-executed CPU-bound task: `additions` successive additions
/// (the paper's 1e8-additions problem, scaled down for test runtimes).
struct BusyTask {
  std::uint64_t additions = 100'000'000;
};

/// Executes the additions loop; returns the accumulated value so the
/// compiler cannot elide the work.
std::uint64_t run_busy_task(const BusyTask& task) noexcept;

/// One emulated machine: worker threads execute tasks; an internal
/// sampler integrates modeled energy from the live busy-worker count.
class EmulatedNode {
 public:
  EmulatedNode(std::string name, cluster::NodeSpec spec,
               std::chrono::milliseconds sample_period = std::chrono::milliseconds(10));
  ~EmulatedNode();
  EmulatedNode(const EmulatedNode&) = delete;
  EmulatedNode& operator=(const EmulatedNode&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const cluster::NodeSpec& spec() const noexcept { return spec_; }

  /// Enqueues a task; `on_done(elapsed_seconds)` fires on the worker
  /// thread that ran it.  Returns false after shutdown began.
  bool submit(BusyTask task, std::function<void(double)> on_done);

  [[nodiscard]] unsigned busy_workers() const noexcept { return busy_workers_.load(); }
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_.load(); }

  /// Modeled instantaneous power from the live busy-worker count.
  [[nodiscard]] double instantaneous_power_watts() const noexcept;
  /// Energy since construction: the sampler's integral plus the
  /// in-flight slice since the last sample (so short-lived runs are not
  /// under-counted).
  [[nodiscard]] double sampled_energy_joules() const noexcept;
  /// Mean measured per-task throughput (additions/second); 0 before the
  /// first completion.
  [[nodiscard]] double measured_additions_per_second() const noexcept;

  /// Stops accepting work, drains the queue, joins all threads.
  void shutdown();

 private:
  void worker_loop();
  void sampler_loop();

  std::string name_;
  cluster::NodeSpec spec_;
  std::chrono::milliseconds sample_period_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::pair<BusyTask, std::function<void(double)>>> queue_;
  bool stopping_ = false;

  std::atomic<bool> sampler_stop_{false};
  std::atomic<unsigned> busy_workers_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<double> energy_joules_{0.0};
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<std::int64_t> last_sample_ns_{0};  ///< since epoch_
  std::atomic<double> rate_sum_{0.0};
  std::atomic<std::uint64_t> rate_samples_{0};

  std::vector<std::thread> workers_;
  std::thread sampler_;
};

/// Outcome of one emulation run.
struct EmulationReport {
  std::uint64_t tasks = 0;
  double wall_seconds = 0.0;
  double energy_joules = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> tasks_per_node;
};

/// A minimal live testbed: a set of emulated nodes and a greedy placement
/// loop ranking nodes by modeled power/performance (lower first) — the
/// GreenPerf rule against live machines.
class Emulation {
 public:
  explicit Emulation(std::vector<std::pair<std::string, cluster::NodeSpec>> machines);

  /// Runs `task_count` copies of `task`, placing each on the
  /// lowest-GreenPerf node with a free worker (blocking when all busy).
  EmulationReport run(BusyTask task, std::uint64_t task_count);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] EmulatedNode& node(std::size_t i) { return *nodes_.at(i); }

 private:
  std::vector<std::unique_ptr<EmulatedNode>> nodes_;
};

}  // namespace greensched::testbed
