#include "xmlite/xml.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>

namespace greensched::xmlite {

namespace {

bool name_start_char(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool name_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' || c == '.' ||
         c == '-';
}

double parse_double_or_throw(std::string_view text, const char* what) {
  double out = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  // Skip surrounding whitespace, which is common in hand-edited planning
  // files.
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin))) ++begin;
  while (end != begin && std::isspace(static_cast<unsigned char>(end[-1]))) --end;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end)
    throw ParseError(std::string(what) + ": not a number: '" + std::string(text) + "'", 0, 0);
  return out;
}

long long parse_int_or_throw(std::string_view text, const char* what) {
  long long out = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin))) ++begin;
  while (end != begin && std::isspace(static_cast<unsigned char>(end[-1]))) --end;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end)
    throw ParseError(std::string(what) + ": not an integer: '" + std::string(text) + "'", 0, 0);
  return out;
}

std::string format_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

bool valid_name(std::string_view name) noexcept {
  if (name.empty() || !name_start_char(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!name_char(c)) return false;
  }
  return true;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

Element::Element(std::string name) : name_(std::move(name)) {
  if (!valid_name(name_))
    throw ParseError("invalid element name: '" + name_ + "'", 0, 0);
}

Element& Element::set_attribute(std::string_view key, std::string_view value) {
  if (!valid_name(key)) throw ParseError("invalid attribute name: '" + std::string(key) + "'", 0, 0);
  attributes_[std::string(key)] = std::string(value);
  return *this;
}

Element& Element::set_attribute(std::string_view key, double value) {
  return set_attribute(key, format_double(value));
}

Element& Element::set_attribute(std::string_view key, long long value) {
  return set_attribute(key, std::to_string(value));
}

bool Element::has_attribute(std::string_view key) const noexcept {
  return attributes_.find(key) != attributes_.end();
}

std::optional<std::string> Element::attribute(std::string_view key) const {
  auto it = attributes_.find(key);
  if (it == attributes_.end()) return std::nullopt;
  return it->second;
}

double Element::attribute_as_double(std::string_view key) const {
  auto v = attribute(key);
  if (!v) throw ParseError("missing attribute '" + std::string(key) + "' on <" + name_ + ">", 0, 0);
  return parse_double_or_throw(*v, "attribute");
}

long long Element::attribute_as_int(std::string_view key) const {
  auto v = attribute(key);
  if (!v) throw ParseError("missing attribute '" + std::string(key) + "' on <" + name_ + ">", 0, 0);
  return parse_int_or_throw(*v, "attribute");
}

Element& Element::set_text(std::string_view text) {
  text_ = std::string(text);
  return *this;
}

Element& Element::set_text(double value) { return set_text(format_double(value)); }

double Element::text_as_double() const { return parse_double_or_throw(text_, "element text"); }
long long Element::text_as_int() const { return parse_int_or_throw(text_, "element text"); }

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::add_child(Element child) {
  children_.push_back(std::make_unique<Element>(std::move(child)));
  return *children_.back();
}

Element& Element::child_at(std::size_t i) { return *children_.at(i); }
const Element& Element::child_at(std::size_t i) const { return *children_.at(i); }

const Element* Element::find_child(std::string_view name) const noexcept {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::find_child(std::string_view name) noexcept {
  for (auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::find_children(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

const Element& Element::require_child(std::string_view name) const {
  const Element* c = find_child(name);
  if (!c) throw ParseError("missing child <" + std::string(name) + "> in <" + name_ + ">", 0, 0);
  return *c;
}

std::string Element::to_string(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << '<' << name_;
  for (const auto& [k, v] : attributes_) {
    os << ' ' << k << "=\"" << escape(v) << '"';
  }
  if (text_.empty() && children_.empty()) {
    os << "/>";
    return os.str();
  }
  os << '>';
  if (!text_.empty()) os << escape(text_);
  if (!children_.empty()) {
    os << '\n';
    for (const auto& c : children_) os << c->to_string(indent + 1) << '\n';
    os << pad;
  }
  os << "</" << name_ << '>';
  return os.str();
}

std::string Document::to_string() const {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root_.to_string() + "\n";
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view with line/column tracking.

namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParseLimits& limits) : text_(text), limits_(limits) {}

  Document parse_document() {
    if (text_.size() > limits_.max_input_bytes) {
      fail("input exceeds " + std::to_string(limits_.max_input_bytes) +
           " byte limit (" + std::to_string(text_.size()) + " bytes)");
    }
    skip_prolog();
    Element root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return Document(std::move(root));
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  [[nodiscard]] bool starts_with(std::string_view s) const noexcept {
    return text_.substr(pos_, s.size()) == s;
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
    advance();
  }

  void expect(std::string_view s) {
    for (char c : s) expect(c);
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(text_[pos_]))) advance();
  }

  void skip_comment() {
    expect("<!--");
    while (!starts_with("-->")) {
      if (at_end()) fail("unterminated comment");
      advance();
    }
    expect("-->");
  }

  void skip_misc() {
    for (;;) {
      skip_ws();
      if (starts_with("<!--")) {
        skip_comment();
      } else {
        break;
      }
    }
  }

  void skip_prolog() {
    skip_ws();
    if (starts_with("<?xml")) {
      while (!starts_with("?>")) {
        if (at_end()) fail("unterminated XML declaration");
        advance();
      }
      expect("?>");
    }
    skip_misc();
  }

  std::string parse_name() {
    if (at_end() || !name_start_char(peek())) fail("expected a name");
    std::string name;
    name.push_back(advance());
    while (!at_end() && name_char(text_[pos_])) {
      name.push_back(advance());
      if (name.size() > limits_.max_name_length) {
        fail("name exceeds " + std::to_string(limits_.max_name_length) + " character limit");
      }
    }
    return name;
  }

  std::string parse_reference() {
    if (++entities_ > limits_.max_entity_expansions) {
      fail("more than " + std::to_string(limits_.max_entity_expansions) +
           " entity references");
    }
    expect('&');
    std::string entity;
    while (peek() != ';') {
      entity.push_back(advance());
      if (entity.size() > 8) fail("entity reference too long");
    }
    expect(';');
    if (entity == "amp") return "&";
    if (entity == "lt") return "<";
    if (entity == "gt") return ">";
    if (entity == "quot") return "\"";
    if (entity == "apos") return "'";
    if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::string_view digits(entity);
      digits.remove_prefix(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits.remove_prefix(1);
      }
      unsigned long code = 0;
      auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), code, base);
      if (ec != std::errc{} || ptr != digits.data() + digits.size() || code == 0 || code > 127)
        fail("unsupported character reference &" + entity + "; (ASCII only)");
      return std::string(1, static_cast<char>(code));
    }
    fail("unknown entity &" + entity + ";");
  }

  std::string parse_attribute_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    advance();
    std::string value;
    while (peek() != quote) {
      if (peek() == '&') {
        value += parse_reference();
      } else if (peek() == '<') {
        fail("'<' not allowed in attribute value");
      } else {
        value.push_back(advance());
      }
    }
    advance();  // closing quote
    return value;
  }

  Element parse_element() {
    // Nesting burns real stack frames (recursive descent), and nodes burn
    // real heap; both must be bounded before a hostile document can
    // exhaust either.
    if (++depth_ > limits_.max_depth) {
      fail("element nesting exceeds depth limit of " + std::to_string(limits_.max_depth));
    }
    if (++nodes_ > limits_.max_nodes) {
      fail("document exceeds " + std::to_string(limits_.max_nodes) + " element limit");
    }
    expect('<');
    Element element(parse_name());
    for (;;) {
      skip_ws();
      if (starts_with("/>")) {
        expect("/>");
        --depth_;
        return element;
      }
      if (peek() == '>') {
        advance();
        break;
      }
      const std::string key = parse_name();
      skip_ws();
      expect('=');
      skip_ws();
      if (element.has_attribute(key)) fail("duplicate attribute '" + key + "'");
      element.set_attribute(key, parse_attribute_value());
    }
    // Content: text, children, comments, until the matching close tag.
    std::string text;
    for (;;) {
      if (at_end()) fail("unterminated element <" + element.name() + ">");
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("</")) {
        expect("</");
        const std::string close = parse_name();
        if (close != element.name())
          fail("mismatched close tag </" + close + "> for <" + element.name() + ">");
        skip_ws();
        expect('>');
        break;
      } else if (peek() == '<') {
        element.add_child(parse_element());
      } else if (peek() == '&') {
        text += parse_reference();
      } else {
        text.push_back(advance());
      }
    }
    // Trim pure-whitespace text (indentation between children).
    const auto first = text.find_first_not_of(" \t\r\n");
    if (first != std::string::npos) {
      const auto last = text.find_last_not_of(" \t\r\n");
      element.set_text(text.substr(first, last - first + 1));
    }
    --depth_;
    return element;
  }

  std::string_view text_;
  ParseLimits limits_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  std::size_t depth_ = 0;
  std::size_t nodes_ = 0;
  std::size_t entities_ = 0;
};

}  // namespace

ParseLimits ParseLimits::unlimited() noexcept {
  ParseLimits limits;
  limits.max_input_bytes = static_cast<std::size_t>(-1);
  // Depth stays bounded even here: the parser recurses, and no amount of
  // trust in the input makes stack exhaustion recoverable.
  limits.max_depth = 4096;
  limits.max_nodes = static_cast<std::size_t>(-1);
  limits.max_name_length = static_cast<std::size_t>(-1);
  limits.max_entity_expansions = static_cast<std::size_t>(-1);
  return limits;
}

Document Document::parse(std::string_view text) { return parse(text, ParseLimits{}); }

Document Document::parse(std::string_view text, const ParseLimits& limits) {
  return Parser(text, limits).parse_document();
}

}  // namespace greensched::xmlite
