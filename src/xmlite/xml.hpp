// Minimal XML document model, serializer and parser.
//
// The provisioning planning of the paper (Fig. 8) is "a shared XML file";
// rather than pulling a dependency we implement the subset needed:
// elements, attributes, text content, comments, an optional declaration,
// and the five predefined entities plus numeric character references.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace greensched::xmlite {

using greensched::common::ParseError;

/// One XML element.  Children are owned; text is the concatenated
/// character data directly inside this element.
class Element {
 public:
  explicit Element(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- attributes ---
  Element& set_attribute(std::string_view key, std::string_view value);
  Element& set_attribute(std::string_view key, double value);
  Element& set_attribute(std::string_view key, long long value);
  [[nodiscard]] bool has_attribute(std::string_view key) const noexcept;
  [[nodiscard]] std::optional<std::string> attribute(std::string_view key) const;
  /// Attribute parsed as double; throws ParseError if missing or malformed.
  [[nodiscard]] double attribute_as_double(std::string_view key) const;
  [[nodiscard]] long long attribute_as_int(std::string_view key) const;
  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& attributes() const noexcept {
    return attributes_;
  }

  // --- text content ---
  Element& set_text(std::string_view text);
  Element& set_text(double value);
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] double text_as_double() const;
  [[nodiscard]] long long text_as_int() const;

  // --- children ---
  Element& add_child(std::string name);
  Element& add_child(Element child);
  [[nodiscard]] std::size_t child_count() const noexcept { return children_.size(); }
  [[nodiscard]] Element& child_at(std::size_t i);
  [[nodiscard]] const Element& child_at(std::size_t i) const;
  /// First child with the given name, or nullptr.
  [[nodiscard]] const Element* find_child(std::string_view name) const noexcept;
  [[nodiscard]] Element* find_child(std::string_view name) noexcept;
  /// All children with the given name.
  [[nodiscard]] std::vector<const Element*> find_children(std::string_view name) const;
  /// First child with the given name; throws ParseError if absent.
  [[nodiscard]] const Element& require_child(std::string_view name) const;

  /// Serializes this element (and subtree) with 2-space indentation.
  [[nodiscard]] std::string to_string(int indent = 0) const;

 private:
  std::string name_;
  std::map<std::string, std::string, std::less<>> attributes_;
  std::string text_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// Resource ceilings for the parser.  Planning files, experiment configs
/// and traces are all small; anything that trips these defaults is
/// corrupt or hostile input (an "XML bomb"), and the parser must refuse
/// it with a ParseError instead of exhausting memory or the stack.
struct ParseLimits {
  std::size_t max_input_bytes = 16u << 20;   ///< whole-document size cap
  std::size_t max_depth = 64;                ///< element nesting (recursion) cap
  std::size_t max_nodes = 262144;            ///< total element count cap
  std::size_t max_name_length = 256;         ///< element/attribute name cap
  std::size_t max_entity_expansions = 65536; ///< entity/char-reference cap

  /// Effectively unbounded limits, for callers that already vetted the
  /// input (e.g. re-reading a snapshot this process wrote).
  [[nodiscard]] static ParseLimits unlimited() noexcept;
};

/// A document: optional declaration plus exactly one root element.
class Document {
 public:
  explicit Document(Element root) : root_(std::move(root)) {}

  [[nodiscard]] Element& root() noexcept { return root_; }
  [[nodiscard]] const Element& root() const noexcept { return root_; }

  /// Serializes with an XML declaration line.
  [[nodiscard]] std::string to_string() const;

  /// Parses a document from text; throws ParseError with line/column
  /// info.  The no-limits overload applies the ParseLimits defaults.
  static Document parse(std::string_view text);
  static Document parse(std::string_view text, const ParseLimits& limits);

 private:
  Element root_;
};

/// Escapes &, <, >, ", ' for use in text or attribute values.
[[nodiscard]] std::string escape(std::string_view raw);
/// True iff `name` is a valid element/attribute name in our subset
/// ([A-Za-z_:][A-Za-z0-9._:-]*).
[[nodiscard]] bool valid_name(std::string_view name) noexcept;

}  // namespace greensched::xmlite
