#include "durable/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace greensched::durable {

using common::IoError;

namespace {

[[noreturn]] void throw_errno(const char* what, const std::filesystem::path& path) {
  throw IoError(std::string(what) + " failed (" + std::strerror(errno) + ")", path.string());
}

}  // namespace

FileHandle& FileHandle::operator=(FileHandle&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

FileHandle::~FileHandle() { close(); }

void FileHandle::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FileHandle open_append(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open", path);
  return FileHandle(fd);
}

void write_all(const FileHandle& file, std::string_view data) {
  const char* cursor = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t written = ::write(file.fd(), cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("write failed (") + std::strerror(errno) + ")", "<fd>");
    }
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }
}

void sync_file(const FileHandle& file) {
  if (::fsync(file.fd()) != 0) {
    throw IoError(std::string("fsync failed (") + std::strerror(errno) + ")", "<fd>");
  }
}

void sync_parent_dir(const std::filesystem::path& path) {
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open directory", dir);
  // Some filesystems (and some container overlays) refuse fsync on a
  // directory; that weakens durability but is not our bug to fail on.
  ::fsync(fd);
  ::close(fd);
}

void truncate_file(const std::filesystem::path& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) throw_errno("truncate", path);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file for reading", path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw IoError("read failed", path.string());
  return std::move(buffer).str();
}

void write_file_atomic(const std::filesystem::path& path, std::string_view content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) throw_errno("open", tmp);
    FileHandle file(fd);
    write_all(file, content);
    sync_file(file);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw IoError("rename failed (" + ec.message() + ")", path.string());
  sync_parent_dir(path);
}

}  // namespace greensched::durable
