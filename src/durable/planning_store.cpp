#include "durable/planning_store.hpp"

#include <system_error>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "durable/serialize.hpp"
#include "durable/snapshot.hpp"

namespace greensched::durable {

using common::IoError;
using common::ParseError;

std::string encode_planning_entry(const green::PlanningEntry& entry) {
  ByteWriter writer;
  writer.f64(entry.timestamp);
  writer.f64(entry.temperature);
  writer.u64(static_cast<std::uint64_t>(entry.candidates));
  writer.f64(entry.electricity_cost);
  return writer.take();
}

green::PlanningEntry decode_planning_entry(std::string_view payload) {
  ByteReader reader(payload);
  green::PlanningEntry entry;
  entry.timestamp = reader.f64();
  entry.temperature = reader.f64();
  entry.candidates = static_cast<std::size_t>(reader.u64());
  entry.electricity_cost = reader.f64();
  reader.expect_end();
  return entry;
}

PlanningStore::PlanningStore(std::filesystem::path dir,
                             green::ProvisioningPlanning& planning)
    : PlanningStore(std::move(dir), planning, Options{}) {}

PlanningStore::PlanningStore(std::filesystem::path dir,
                             green::ProvisioningPlanning& planning, Options options)
    : dir_(std::move(dir)), planning_(planning), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) throw IoError("cannot create state directory (" + ec.message() + ")", dir_.string());
  recover();
  journal_ = Journal::open(journal_path(), options_.journal);
  planning_.set_observer(this);
}

PlanningStore::~PlanningStore() {
  if (planning_.observer() == this) planning_.set_observer(nullptr);
  try {
    if (journal_) journal_->sync();
  } catch (const std::exception&) {
    // Destructors must not throw; the journal is as durable as the last
    // successful fsync.
  }
}

void PlanningStore::recover() {
  // 1. Newest verifiable snapshot.  A snapshot that fails its checksum
  //    (or no longer parses) is moved aside for inspection and we fall
  //    back to the previous one — quarantine, don't crash.
  auto try_load = [this](const std::filesystem::path& path) -> bool {
    SnapshotRead snap = read_snapshot(path);
    if (snap.status == SnapshotStatus::kMissing) return false;
    if (snap.status == SnapshotStatus::kOk) {
      try {
        planning_.load_xml_string(snap.content);
        return true;
      } catch (const ParseError& e) {
        GS_LOG_WARN("durable") << "planning snapshot " << path.string()
                               << " unparseable: " << e.what();
      }
    } else {
      GS_LOG_WARN("durable") << "planning snapshot " << path.string() << " corrupt: "
                             << snap.detail;
    }
    quarantine(path);
    recovery_.snapshot_quarantined = true;
    return false;
  };

  if (try_load(snapshot_path())) {
    recovery_.snapshot_entries = planning_.size();
  } else if (try_load(previous_snapshot_path())) {
    recovery_.snapshot_entries = planning_.size();
    recovery_.used_previous_snapshot = true;
  }

  // 2. Journal tail.  replay() already CRC-checks every frame and
  //    truncates a torn tail in place; replaying into add_entry is
  //    idempotent (equal timestamps replace), so records that were
  //    already compacted into the snapshot are harmless.
  Journal::Replay replay;
  try {
    replay = Journal::replay(journal_path());
  } catch (const ParseError& e) {
    GS_LOG_WARN("durable") << "planning journal unusable: " << e.what();
    quarantine(journal_path());
    recovery_.journal_quarantined = true;
    return;
  }
  recovery_.journal_truncated = replay.truncated;
  for (const std::string& record : replay.records) {
    try {
      planning_.add_entry(decode_planning_entry(record));
      ++recovery_.journal_entries;
    } catch (const std::exception& e) {
      // A CRC-valid but undecodable record means writer/reader schema
      // drift; everything before it is good, nothing after is trusted.
      GS_LOG_WARN("durable") << "planning journal: stopping replay at undecodable record: "
                             << e.what();
      recovery_.journal_truncated = true;
      break;
    }
  }
}

void PlanningStore::on_add(const green::PlanningEntry& entry) {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  // Compact BEFORE appending: the snapshot captures the state without
  // this entry, and the entry's record lands in the fresh journal.  The
  // other order would reset the journal right after acknowledging the
  // append, losing the entry on a crash.
  if (options_.compact_every != 0 && since_compact_ >= options_.compact_every) {
    compact_locked();
  }
  journal_->append(encode_planning_entry(entry));
  ++since_compact_;
}

void PlanningStore::compact() {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  compact_locked();
}

void PlanningStore::compact_locked() {
  // Order matters for crash safety:
  //   a) demote the current snapshot to .prev (keeps a fallback),
  //   b) write the new snapshot atomically,
  //   c) reset the journal.
  // A crash after (a) recovers from .prev + the still-intact journal; a
  // crash after (b) merely replays entries the snapshot already holds.
  const std::string xml = planning_.to_xml_string();
  std::error_code ec;
  if (std::filesystem::exists(snapshot_path(), ec)) {
    std::filesystem::rename(snapshot_path(), previous_snapshot_path(), ec);
    if (ec) {
      throw IoError("cannot demote snapshot (" + ec.message() + ")",
                    snapshot_path().string());
    }
    sync_parent_dir(snapshot_path());
  }
  write_snapshot(snapshot_path(), xml);
  journal_.reset();  // close the handle before replacing the file
  Journal::reset(journal_path());
  journal_ = Journal::open(journal_path(), options_.journal);
  since_compact_ = 0;
}

void PlanningStore::sync() {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  journal_->sync();
}

}  // namespace greensched::durable
