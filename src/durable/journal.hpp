// Write-ahead journal: an append-only log of CRC32-framed records.
//
// File layout:
//
//   bytes 0..7   magic "GSJRNL1\n"
//   record:      u32 payload_size | u32 crc32(payload) | payload bytes
//   record: ...
//
// Appends are written with write(2) and fsync-batched: with
// `fsync_every = N` the journal fsyncs once per N appends (and on
// sync()/close()), amortising the flush over bursts while bounding the
// window of acknowledged-but-volatile records.  `fsync_every = 1` is
// classic write-ahead durability; `0` leaves flushing to the OS.
//
// Recovery (`replay`) scans records until the file ends or a frame
// fails its length or CRC check.  Everything before the bad frame is
// returned; the file is truncated back to the last complete record so
// subsequent appends produce a well-formed log — a torn final record
// from a crash mid-write heals instead of poisoning the journal.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "durable/fsio.hpp"

namespace greensched::durable {

inline constexpr std::string_view kJournalMagic = "GSJRNL1\n";

class Journal {
 public:
  struct Options {
    /// fsync after every Nth append; 0 = never fsync implicitly.
    std::size_t fsync_every = 1;
  };

  /// What replay() found on disk.
  struct Replay {
    std::vector<std::string> records;  ///< complete, CRC-verified payloads
    /// True when a torn/corrupt tail was detected and truncated away.
    bool truncated = false;
    /// File size after truncation (= offset of the first bad byte).
    std::uint64_t valid_bytes = 0;
  };

  /// Opens `path` for appending, writing the magic header if the file is
  /// new/empty.  The caller should replay() first when recovering; open()
  /// itself does not validate existing contents.  Throws common::IoError.
  static Journal open(const std::filesystem::path& path, Options options);
  static Journal open(const std::filesystem::path& path);

  /// Verifies and loads all complete records of `path`, truncating a
  /// torn or corrupt tail in place.  A missing file yields an empty
  /// replay.  A file whose *header* is corrupt throws common::ParseError
  /// — the caller decides whether to quarantine.  Throws common::IoError
  /// on environment failures.
  [[nodiscard]] static Replay replay(const std::filesystem::path& path);

  /// Atomically replaces the journal file with a fresh, empty one (used
  /// after a snapshot compaction).  Any open Journal on that path must
  /// be reopened.  Throws common::IoError.
  static void reset(const std::filesystem::path& path);

  Journal(Journal&&) noexcept = default;
  Journal& operator=(Journal&&) noexcept = default;

  /// Appends one framed record.  Thread-safe.  Throws common::IoError.
  void append(std::string_view payload);

  /// Flushes and fsyncs everything appended so far.  Thread-safe.
  void sync();

  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }

 private:
  Journal(std::filesystem::path path, FileHandle file, Options options)
      : path_(std::move(path)),
        file_(std::move(file)),
        options_(options),
        mutex_(std::make_unique<std::mutex>()) {}

  std::filesystem::path path_;
  FileHandle file_;
  Options options_;
  std::unique_ptr<std::mutex> mutex_;  ///< unique_ptr keeps Journal movable
  std::uint64_t appended_ = 0;
  std::size_t unsynced_ = 0;
};

/// Frames `payload` exactly as append() writes it (tests and corpus
/// builders use this to craft journals byte by byte).
[[nodiscard]] std::string frame_record(std::string_view payload);

}  // namespace greensched::durable
