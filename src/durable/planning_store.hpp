// Durable persistence for the Fig. 8 provisioning planning.
//
// The paper's planning is "a shared XML file" — the one artifact the
// provisioner, monitors and forecasters all agree on.  In-process we
// keep it in green::ProvisioningPlanning; this store makes that record
// survive the process:
//
//   <dir>/planning.xml        last compacted snapshot (checksummed XML)
//   <dir>/planning.prev.xml   the snapshot before that (fallback)
//   <dir>/planning.journal    write-ahead log of entries since snapshot
//
// Protocol:
//   * add_entry  → journal append (fsync-batched) happens BEFORE the
//     in-memory insert (ProvisioningPlanning's write-ahead observer).
//   * compact    → snapshot written atomically, previous snapshot kept
//     as .prev, journal reset.  Crash at any point between those steps
//     recovers correctly because journal replay is idempotent
//     (add_entry replaces on equal timestamps).
//   * recovery   → newest verifiable snapshot (corrupt ones are
//     quarantined, never deleted) + journal tail; a torn final record
//     is detected by its CRC frame and truncated away.
#pragma once

#include <filesystem>
#include <optional>

#include "durable/journal.hpp"
#include "green/planning.hpp"

namespace greensched::durable {

/// Encodes a planning entry as a journal payload (binary, bit-exact).
[[nodiscard]] std::string encode_planning_entry(const green::PlanningEntry& entry);
/// Decodes; throws common::ParseError on malformed payloads.
[[nodiscard]] green::PlanningEntry decode_planning_entry(std::string_view payload);

class PlanningStore final : public green::PlanningObserver {
 public:
  struct Options {
    Journal::Options journal{};
    /// Compact automatically once the journal holds this many records
    /// (0 = only on explicit compact()).
    std::size_t compact_every = 0;
  };

  /// What recovery found.  All counters refer to the open() call.
  struct Recovery {
    std::size_t snapshot_entries = 0;   ///< entries restored from XML
    std::size_t journal_entries = 0;    ///< entries replayed from the log
    bool journal_truncated = false;     ///< torn tail detected + healed
    bool snapshot_quarantined = false;  ///< planning.xml failed its CRC
    bool journal_quarantined = false;   ///< journal header was unusable
    bool used_previous_snapshot = false;  ///< fell back to planning.prev.xml
  };

  /// Opens (creating) `dir`, recovers `planning` from snapshot+journal,
  /// and attaches itself as the planning's write-ahead observer.
  /// Throws common::IoError on environment failures; malformed state is
  /// quarantined, not thrown.
  PlanningStore(std::filesystem::path dir, green::ProvisioningPlanning& planning,
                Options options);
  PlanningStore(std::filesystem::path dir, green::ProvisioningPlanning& planning);
  ~PlanningStore() override;

  PlanningStore(const PlanningStore&) = delete;
  PlanningStore& operator=(const PlanningStore&) = delete;

  /// green::PlanningObserver: journal the entry ahead of the insert.
  void on_add(const green::PlanningEntry& entry) override;

  /// Writes a fresh snapshot atomically and truncates the journal.
  void compact();

  /// Flushes the journal to stable storage.
  void sync();

  [[nodiscard]] const Recovery& recovery() const noexcept { return recovery_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }
  [[nodiscard]] std::filesystem::path snapshot_path() const { return dir_ / kSnapshotFile; }
  [[nodiscard]] std::filesystem::path previous_snapshot_path() const {
    return dir_ / kPreviousSnapshotFile;
  }
  [[nodiscard]] std::filesystem::path journal_path() const { return dir_ / kJournalFile; }

  static constexpr const char* kSnapshotFile = "planning.xml";
  static constexpr const char* kPreviousSnapshotFile = "planning.prev.xml";
  static constexpr const char* kJournalFile = "planning.journal";

 private:
  void recover();
  void compact_locked();

  std::filesystem::path dir_;
  green::ProvisioningPlanning& planning_;
  Options options_;
  std::optional<Journal> journal_;
  Recovery recovery_;
  std::mutex store_mutex_;  ///< serializes on_add / compact / sync
  std::size_t since_compact_ = 0;
};

}  // namespace greensched::durable
