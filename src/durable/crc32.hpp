// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Every durable artifact — journal records, XML snapshots, checkpoint
// manifests — is framed with this checksum so that a torn write or a
// bit flip on disk is *detected* at recovery time instead of silently
// corrupting the recovered state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace greensched::durable {

/// Incremental CRC-32: feed `seed` the previous return value to chain
/// buffers.  `seed = 0` starts a fresh checksum.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32(std::string_view text,
                                         std::uint32_t seed = 0) noexcept {
  return crc32(text.data(), text.size(), seed);
}

}  // namespace greensched::durable
