#include "durable/journal.hpp"

#include <cstring>

#include "common/error.hpp"
#include "durable/crc32.hpp"

namespace greensched::durable {

using common::IoError;
using common::ParseError;

namespace {

constexpr std::size_t kFrameHeader = 2 * sizeof(std::uint32_t);

std::uint32_t load_u32(const char* bytes) noexcept {
  std::uint32_t value;
  std::memcpy(&value, bytes, sizeof value);
  return value;
}

void store_u32(std::string& out, std::uint32_t value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  out.append(bytes, sizeof bytes);
}

}  // namespace

std::string frame_record(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  store_u32(frame, static_cast<std::uint32_t>(payload.size()));
  store_u32(frame, crc32(payload));
  frame.append(payload.data(), payload.size());
  return frame;
}

Journal Journal::open(const std::filesystem::path& path) { return open(path, Options{}); }

Journal Journal::open(const std::filesystem::path& path, Options options) {
  std::error_code ec;
  const std::uint64_t existing =
      std::filesystem::exists(path, ec) ? std::filesystem::file_size(path, ec) : 0;
  FileHandle file = open_append(path);
  if (existing == 0) {
    write_all(file, kJournalMagic);
    sync_file(file);
    sync_parent_dir(path);
  }
  return Journal(path, std::move(file), options);
}

Journal::Replay Journal::replay(const std::filesystem::path& path) {
  Replay result;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return result;

  const std::string bytes = read_file(path);
  if (bytes.size() < kJournalMagic.size() ||
      std::string_view(bytes).substr(0, kJournalMagic.size()) != kJournalMagic) {
    throw ParseError("journal " + path.string() + ": bad or missing magic header", 0, 0);
  }

  std::size_t pos = kJournalMagic.size();
  std::size_t last_good = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeader) break;  // torn frame header
    const std::uint32_t size = load_u32(bytes.data() + pos);
    const std::uint32_t expected_crc = load_u32(bytes.data() + pos + sizeof(std::uint32_t));
    if (bytes.size() - pos - kFrameHeader < size) break;  // torn payload
    const std::string_view payload(bytes.data() + pos + kFrameHeader, size);
    if (crc32(payload) != expected_crc) break;  // bit rot or torn overwrite
    result.records.emplace_back(payload);
    pos += kFrameHeader + size;
    last_good = pos;
  }

  result.valid_bytes = last_good;
  if (last_good != bytes.size()) {
    result.truncated = true;
    truncate_file(path, last_good);
  }
  return result;
}

void Journal::reset(const std::filesystem::path& path) {
  write_file_atomic(path, kJournalMagic);
}

void Journal::append(std::string_view payload) {
  const std::string frame = frame_record(payload);
  const std::lock_guard<std::mutex> lock(*mutex_);
  // O_APPEND makes the frame a single atomic-offset write; a crash can
  // tear its tail, which replay() detects by length/CRC and truncates.
  write_all(file_, frame);
  ++appended_;
  ++unsynced_;
  if (options_.fsync_every != 0 && unsynced_ >= options_.fsync_every) {
    sync_file(file_);
    unsynced_ = 0;
  }
}

void Journal::sync() {
  const std::lock_guard<std::mutex> lock(*mutex_);
  sync_file(file_);
  unsynced_ = 0;
}

}  // namespace greensched::durable
