// Little-endian binary encoding for durable record payloads.
//
// Doubles travel as their IEEE-754 bit pattern, so a value round-trips
// *bitwise* — the property the sweep checkpoint needs for resumed runs
// to emit byte-identical CSVs.  ByteReader is bounds-checked and throws
// common::ParseError on truncation, which the recovery paths treat the
// same way as a CRC mismatch: the record is discarded, never trusted.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace greensched::durable {

class ByteWriter {
 public:
  void u32(std::uint32_t value) { raw(&value, sizeof value); }
  void u64(std::uint64_t value) { raw(&value, sizeof value); }
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
  /// Length-prefixed (u32) byte string.
  void str(std::string_view value) {
    u32(static_cast<std::uint32_t>(value.size()));
    buffer_.append(value.data(), value.size());
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }

 private:
  void raw(const void* data, std::size_t size) {
    // The library only targets little-endian hosts (x86-64 / aarch64);
    // make the assumption explicit rather than silently writing
    // byte-swapped journals on an exotic port.
    static_assert(std::endian::native == std::endian::little,
                  "durable record encoding assumes a little-endian host");
    buffer_.append(static_cast<const char*>(data), size);
  }

  std::string buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] std::uint32_t u32() { return read_as<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_as<std::uint64_t>(); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint32_t size = u32();
    if (bytes_.size() - pos_ < size) fail("string extends past end of record");
    std::string out(bytes_.substr(pos_, size));
    pos_ += size;
    return out;
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }
  /// Bytes left to read.  Decoders use this to sanity-bound collection
  /// counts read from the payload before reserving memory for them.
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  /// Throws ParseError unless the whole payload was consumed — catches
  /// schema drift between writer and reader.
  void expect_end() const {
    if (!at_end()) fail("trailing bytes after record payload");
  }

 private:
  template <typename T>
  [[nodiscard]] T read_as() {
    if (bytes_.size() - pos_ < sizeof(T)) fail("record payload truncated");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[noreturn]] void fail(const char* message) const {
    throw common::ParseError(std::string("durable record: ") + message, 0, 0);
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace greensched::durable
