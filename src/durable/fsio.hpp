// Thin POSIX file helpers shared by the durable subsystem.
//
// std::ofstream cannot fsync, and durability is exactly the property
// that data reached the platter (or at least the kernel's notion of
// stable storage) before we acknowledge it.  These wrappers expose the
// few syscalls the journal and snapshot writers need, translating
// failures into common::IoError.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>

namespace greensched::durable {

/// RAII file descriptor.  Move-only.
class FileHandle {
 public:
  FileHandle() = default;
  explicit FileHandle(int fd) noexcept : fd_(fd) {}
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;
  FileHandle(FileHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FileHandle& operator=(FileHandle&& other) noexcept;
  ~FileHandle();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// Opens (creating if needed) a file for appending.  Throws IoError.
[[nodiscard]] FileHandle open_append(const std::filesystem::path& path);

/// Writes the whole buffer (retrying short writes).  Throws IoError.
void write_all(const FileHandle& file, std::string_view data);

/// fsync(2) the descriptor.  Throws IoError.
void sync_file(const FileHandle& file);

/// fsync the directory containing `path`, making a rename/create of that
/// entry durable.  Best effort on filesystems that reject O_DIRECTORY
/// fsync; throws IoError only on unexpected failures.
void sync_parent_dir(const std::filesystem::path& path);

/// Truncates the file to `size` bytes.  Throws IoError.
void truncate_file(const std::filesystem::path& path, std::uint64_t size);

/// Reads a whole file into a string.  Throws IoError if unreadable;
/// returns std::nullopt semantics via `exists` checks are the caller's
/// business — a missing file throws too.
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

/// Writes `content` to `path` atomically: tmp file in the same
/// directory, write, fsync, rename over `path`, fsync the directory.
/// Readers see either the old content or the new, never a torn mix.
void write_file_atomic(const std::filesystem::path& path, std::string_view content);

}  // namespace greensched::durable
