#include "durable/snapshot.hpp"

#include <cstdio>
#include <system_error>

#include "common/error.hpp"
#include "durable/crc32.hpp"
#include "durable/fsio.hpp"

namespace greensched::durable {

using common::IoError;

namespace {

std::string trailer_for(std::string_view content) {
  char line[40];
  std::snprintf(line, sizeof line, "%s%08x -->\n", std::string(kSnapshotTrailerPrefix).c_str(),
                crc32(content));
  return line;
}

}  // namespace

void write_snapshot(const std::filesystem::path& path, std::string_view content) {
  std::string framed;
  framed.reserve(content.size() + 40);
  framed.append(content);
  framed.append(trailer_for(content));
  write_file_atomic(path, framed);
}

SnapshotRead read_snapshot(const std::filesystem::path& path) {
  SnapshotRead result;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return result;

  const std::string bytes = read_file(path);
  // The trailer is the last line; find it from the back so snapshot
  // content may itself contain comments.
  const std::size_t at = bytes.rfind(kSnapshotTrailerPrefix);
  if (at == std::string::npos) {
    result.status = SnapshotStatus::kCorrupt;
    result.detail = "checksum trailer missing";
    return result;
  }
  const std::string_view content(bytes.data(), at);
  const std::string expected = trailer_for(content);
  if (std::string_view(bytes).substr(at) != std::string_view(expected)) {
    result.status = SnapshotStatus::kCorrupt;
    result.detail = "crc32 mismatch (file modified or torn)";
    return result;
  }
  result.status = SnapshotStatus::kOk;
  result.content = std::string(content);
  return result;
}

std::filesystem::path quarantine(const std::filesystem::path& path) {
  const std::filesystem::path target = path.string() + ".quarantined";
  std::error_code ec;
  std::filesystem::rename(path, target, ec);
  if (ec == std::errc::no_such_file_or_directory) return target;  // nothing to move
  if (ec) throw IoError("quarantine rename failed (" + ec.message() + ")", path.string());
  sync_parent_dir(path);
  return target;
}

}  // namespace greensched::durable
