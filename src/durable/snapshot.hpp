// Checksummed, atomically-replaced snapshot files.
//
// A snapshot is ordinary text (the Fig. 8 planning XML, say) with one
// trailing checksum line:
//
//   <!-- gs-crc32:xxxxxxxx -->
//
// computed over everything before it.  The trailer doubles as an XML
// comment, so the file on disk stays loadable by any XML tool while
// read_snapshot() can prove it was written completely and has not
// rotted.  Writes go through write_file_atomic (tmp + fsync + rename),
// so a crash mid-compaction leaves the previous snapshot untouched.
//
// A snapshot that fails verification is never deleted: quarantine()
// moves it aside (".quarantined") for the operator to inspect, and the
// caller falls back to the last good state — quarantine, don't crash.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace greensched::durable {

inline constexpr std::string_view kSnapshotTrailerPrefix = "<!-- gs-crc32:";

/// Appends the checksum trailer and writes the file atomically.
/// Throws common::IoError.
void write_snapshot(const std::filesystem::path& path, std::string_view content);

enum class SnapshotStatus {
  kOk,       ///< verified; content is trustworthy
  kMissing,  ///< no file (first run, or compaction never happened)
  kCorrupt,  ///< trailer missing/mangled or CRC mismatch
};

struct SnapshotRead {
  SnapshotStatus status = SnapshotStatus::kMissing;
  std::string content;  ///< trailer stripped; empty unless kOk
  std::string detail;   ///< human-readable reason when kCorrupt
};

/// Reads and verifies a snapshot.  Never throws on *content* problems
/// (that is what SnapshotStatus::kCorrupt is for); throws
/// common::IoError only when the environment fails (unreadable file).
[[nodiscard]] SnapshotRead read_snapshot(const std::filesystem::path& path);

/// Moves a bad file aside to "<path>.quarantined" (replacing any older
/// quarantined copy) and returns the new location.  A missing file is a
/// harmless no-op.  Throws common::IoError on any other failure.
std::filesystem::path quarantine(const std::filesystem::path& path);

}  // namespace greensched::durable
