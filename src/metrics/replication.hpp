// Replicated runs with confidence intervals.
//
// The paper reports single runs; for a simulator it is cheap to replicate
// across seeds and report mean ± 95% confidence interval, which is what
// the benches use for the RANDOM envelope and what downstream users
// should do for their own comparisons.
//
// Seed-override contract: the caller's `PlacementConfig` is immutable —
// it is taken by const reference and never written.  For every entry of
// `seeds` the engine derives a private copy whose `seed` field is
// replaced by that entry; whatever `config.seed` held is ignored.  Each
// derived run is fully self-contained (its own Simulator, Platform,
// Hierarchy, policy and RNG), so replications may execute concurrently:
// with `jobs > 1` the runs are spread over a `common::ThreadPool`, and
// the results are ordered by seed index — bit-identical to a serial
// (`jobs == 1`) execution of the same seeds.
#pragma once

#include <string>
#include <vector>

#include "metrics/experiment.hpp"

namespace greensched::metrics {

/// Mean, spread and a normal-approximation 95% confidence half-width.
struct Estimate {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< 1.96 * stddev / sqrt(n); 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  [[nodiscard]] std::string to_string(int precision = 1) const;
};

/// Aggregated replication of one placement configuration.
struct ReplicatedResult {
  std::string policy;
  Estimate makespan_seconds;
  Estimate energy_joules;
  Estimate mean_wait_seconds;
  std::vector<PlacementResult> runs;  ///< ordered like the input seeds
};

/// Runs `config` under each seed and aggregates.  `jobs` is the worker
/// count (0 = hardware concurrency, 1 = serial in the calling thread);
/// results do not depend on it.
[[nodiscard]] ReplicatedResult run_replicated(const PlacementConfig& config,
                                              const std::vector<std::uint64_t>& seeds,
                                              std::size_t jobs = 1);

/// Convenience: seeds 1..n (deterministic default replication set).
[[nodiscard]] std::vector<std::uint64_t> default_seeds(std::size_t n);

/// Builds an Estimate from raw samples.
[[nodiscard]] Estimate estimate_from(const std::vector<double>& samples);

/// Aggregates already-computed runs into a ReplicatedResult.
[[nodiscard]] ReplicatedResult aggregate_runs(std::string policy,
                                              std::vector<PlacementResult> runs);

/// Welch-style check: do the two estimates' 95% intervals overlap?  A
/// *false* result is evidence the difference is real.
[[nodiscard]] bool intervals_overlap(const Estimate& a, const Estimate& b);

}  // namespace greensched::metrics
