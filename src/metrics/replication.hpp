// Replicated runs with confidence intervals.
//
// The paper reports single runs; for a simulator it is cheap to replicate
// across seeds and report mean ± 95% confidence interval, which is what
// the benches use for the RANDOM envelope and what downstream users
// should do for their own comparisons.
#pragma once

#include <string>
#include <vector>

#include "metrics/experiment.hpp"

namespace greensched::metrics {

/// Mean, spread and a normal-approximation 95% confidence half-width.
struct Estimate {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< 1.96 * stddev / sqrt(n); 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  [[nodiscard]] std::string to_string(int precision = 1) const;
};

/// Aggregated replication of one placement configuration.
struct ReplicatedResult {
  std::string policy;
  Estimate makespan_seconds;
  Estimate energy_joules;
  Estimate mean_wait_seconds;
  std::vector<PlacementResult> runs;
};

/// Runs `config` under each seed and aggregates.
[[nodiscard]] ReplicatedResult run_replicated(PlacementConfig config,
                                              const std::vector<std::uint64_t>& seeds);

/// Convenience: seeds 1..n (deterministic default replication set).
[[nodiscard]] std::vector<std::uint64_t> default_seeds(std::size_t n);

/// Builds an Estimate from raw samples.
[[nodiscard]] Estimate estimate_from(const std::vector<double>& samples);

/// Welch-style check: do the two estimates' 95% intervals overlap?  A
/// *false* result is evidence the difference is real.
[[nodiscard]] bool intervals_overlap(const Estimate& a, const Estimate& b);

}  // namespace greensched::metrics
