#include "metrics/energy_accounting.hpp"

#include <map>

#include "common/error.hpp"

namespace greensched::metrics {

EnergySnapshot::EnergySnapshot(cluster::Platform& platform, common::Seconds at) : time_(at) {
  // Cluster id -> name lookup built once.
  std::map<common::ClusterId, std::string> cluster_names;
  for (std::size_t c = 0; c < platform.cluster_count(); ++c) {
    cluster_names[platform.cluster(c).id] = platform.cluster(c).name;
  }
  for (std::size_t i = 0; i < platform.node_count(); ++i) {
    cluster::Node& node = platform.node(i);
    NodeEnergy entry;
    entry.node = node.name();
    auto it = cluster_names.find(node.cluster());
    entry.cluster = it == cluster_names.end() ? "?" : it->second;
    entry.energy = node.energy(at);
    total_ += entry.energy;
    per_node_.push_back(std::move(entry));
  }
}

std::vector<ClusterEnergy> EnergySnapshot::per_cluster() const {
  std::map<std::string, ClusterEnergy> by_cluster;
  for (const auto& n : per_node_) {
    ClusterEnergy& entry = by_cluster[n.cluster];
    entry.cluster = n.cluster;
    entry.energy += n.energy;
    ++entry.nodes;
  }
  std::vector<ClusterEnergy> out;
  out.reserve(by_cluster.size());
  for (auto& [name, entry] : by_cluster) out.push_back(std::move(entry));
  return out;
}

common::Joules EnergySnapshot::since(const EnergySnapshot& earlier) const {
  if (earlier.time_ > time_)
    throw common::StateError("EnergySnapshot::since: snapshots out of order");
  return total_ - earlier.total_;
}

common::Watts EnergySnapshot::mean_power_since(const EnergySnapshot& earlier) const {
  const common::Seconds dt = time_ - earlier.time_;
  if (dt.value() <= 0.0)
    throw common::StateError("EnergySnapshot::mean_power_since: zero or negative interval");
  return since(earlier) / dt;
}

}  // namespace greensched::metrics
