// Reusable experiment harness.
//
// Every evaluation artifact of the paper is a run (or sweep of runs) of
// the *placement experiment*: build a platform, deploy the DIET tree,
// install a policy, replay a workload, report makespan / energy /
// per-cluster energy / per-server task counts.  Benches, examples and
// integration tests all call this harness instead of re-wiring the stack.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "chaos/scenario.hpp"
#include "cluster/catalog.hpp"
#include "cluster/platform.hpp"
#include "diet/client.hpp"
#include "diet/sed.hpp"
#include "metrics/energy_accounting.hpp"
#include "workload/generator.hpp"

namespace greensched::metrics {

struct ClusterSetup {
  std::string name;
  cluster::NodeSpec spec;
  cluster::ClusterOptions options;
};

/// Table I: 4x Orion + 4x Sagittaire + 4x Taurus as SED nodes (the MA and
/// client nodes carry no computational load and are not modeled).
[[nodiscard]] std::vector<ClusterSetup> table1_clusters();

/// Fig. 6's low-heterogeneity platform: two similar server types
/// (Orion/Taurus-like), flattened to one task per server ("each server is
/// limited to the computation of one task" — served by single-slot SEDs).
[[nodiscard]] std::vector<ClusterSetup> low_heterogeneity_clusters(std::size_t per_type = 6);

/// Fig. 7's high-heterogeneity platform: four server types (adds the
/// Table III simulated clusters Sim1 and Sim2).
[[nodiscard]] std::vector<ClusterSetup> high_heterogeneity_clusters(std::size_t per_type = 4);

/// A Table I platform scaled to `total_nodes` nodes: the three machine
/// types keep their 1:1:1 proportions (remainders go to the earlier
/// Table I entries).  Used by the chaos stress runs, which need
/// platforms far larger than the paper's 12-node testbed.
[[nodiscard]] std::vector<ClusterSetup> scaled_clusters(std::size_t total_nodes);

struct PlacementConfig {
  std::vector<ClusterSetup> clusters = table1_clusters();
  workload::WorkloadConfig workload{};
  std::string policy = "POWER";
  std::uint64_t seed = 42;
  bool per_cluster_tree = true;  ///< MA -> LA per cluster -> SEDs
  diet::SedConfig sed{};
  std::size_t client_count = 1;  ///< tasks split round-robin across clients
  /// Override the task count (0 = requests_per_core * total cores).
  std::size_t task_count_override = 0;
  /// True = servers' nameplate figures are known up front (the paper's
  /// simulations, after an initial benchmark); false = pure learning (the
  /// paper's live runs).
  bool spec_fallback = false;
  /// Fault processes to drive against the run.  Default is inert, and an
  /// inert scenario leaves the run bit-identical to a chaos-free build
  /// (the injector is not even constructed).
  chaos::ChaosScenario chaos{};
  /// Client self-healing knobs; the default reproduces the legacy
  /// reactive behaviour exactly.
  diet::RetryPolicy retry{};
  /// Provisioning strategy spec ("rule-fraction", "delayed-off:delay=120",
  /// ... — see green/provisioning_strategy.hpp).  Empty = no provisioner
  /// at all: the whole platform stays candidate, bit-identical to the
  /// pre-strategy-zoo harness.
  std::string provisioner;
  /// Check period of the provisioner's autonomic loop.  Experiments run
  /// far shorter horizons than the paper's day-long Fig. 9 timeline, so
  /// the default is 60 s rather than the paper's 10 minutes.
  double provisioner_check_seconds = 60.0;
  /// SLA workload profile ("sla:gold=0.2,silver=0.3,..." — see
  /// sla/tier.hpp).  Empty = undecorated legacy workload; the profile's
  /// RNG split happens only when enabled, so an empty spec leaves the run
  /// bit-identical to a pre-SLA build.
  std::string sla_workload;
  /// SLA admission policy spec ("fifo-admit", "revenue-det:alpha=1", ...
  /// — see sla/admission.hpp).  Empty = no admission control: every
  /// decision admits, exactly as before.  The policy replaces `policy` as
  /// the MA ranking plug-in (net-revenue ranking).
  std::string sla_policy;
  /// Serving shards on the master agent (diet::ServingConfig).  1 =
  /// serial serving, the legacy path; > 1 fans candidate collection out
  /// over worker threads.  The determinism contract makes the result
  /// bit-identical at any value, which the twin-sim property suite pins.
  std::size_t shards = 1;
  /// Estimation deadline for the collect gate (seconds of *simulated*
  /// estimation latency a SED may take before it is excluded from the
  /// election).  0 = no deadline; the gate still runs in observer mode
  /// whenever the chaos scenario has gray-failure processes, so
  /// no-deadline runs report truthful election waits.
  double estimation_deadline_seconds = 0.0;
  /// Hedge stragglers once with a tighter budget (deadline / 2) before
  /// giving up on them.  Requires a deadline > 0.
  bool hedge = false;
  /// Live-migration spec ("drain:state=256,bw=1000,..." — see
  /// migrate/migration.hpp).  Empty = no migration controller at all:
  /// the run is bit-identical to a pre-migration build.  Requires a
  /// provisioner (the controller is driven by its drain hook).
  std::string migration;
  /// Write-ahead journal path for migration intent/commit/abort frames
  /// (crash-recovery tests).  Empty = no journal.  Requires `migration`.
  std::string migration_journal;
};

struct ClusterEnergyRow {
  std::string cluster;
  common::Joules energy{0.0};
};

struct PlacementResult {
  std::string policy;
  std::uint64_t seed = 0;
  std::size_t tasks = 0;
  common::Seconds makespan{0.0};
  common::Joules energy{0.0};
  std::vector<ClusterEnergyRow> per_cluster;
  std::vector<std::pair<std::string, std::size_t>> tasks_per_server;
  std::uint64_t sim_events = 0;
  double mean_wait_seconds = 0.0;  ///< mean (start - submit) over tasks

  // --- chaos outcome (all zero for an inert scenario) ---
  std::size_t tasks_completed = 0;
  /// Requests abandoned under the retry policy (the `--no-retry` cost).
  std::size_t tasks_lost = 0;
  /// Requests neither completed nor lost when the simulation drained —
  /// stuck in a queue with no retry timer to rescue them.
  std::size_t tasks_unfinished = 0;
  std::uint64_t tasks_killed = 0;  ///< executions cut short by crashes
  std::uint64_t crashes = 0;
  std::uint64_t repairs = 0;
  std::uint64_t cluster_outages = 0;
  std::uint64_t boot_failures = 0;
  std::uint64_t retries = 0;  ///< timed backoff re-dispatch attempts

  // --- provisioning outcome (all zero/empty without a provisioner) ---
  std::string provisioner;  ///< strategy spec in force ("" = none)
  std::uint64_t provisioner_checks = 0;
  std::uint64_t boots_ordered = 0;      ///< provisioner power-on commands
  std::uint64_t shutdowns_ordered = 0;  ///< provisioner power-off commands
  std::uint64_t degraded_checks = 0;    ///< checks that skipped FAILED nodes
  double mean_candidates = 0.0;         ///< mean pool size over checks
  /// Reactivity: mean |strategy target - applied pool| per check (0 =
  /// the pool always kept up with the strategy's wishes).
  double mean_target_gap = 0.0;
  /// The Fig. 9 candidate series as "t:n;..." — pinned bit-exactly by
  /// the determinism tests (fixed seed + strategy => identical at any
  /// sweep jobs count).
  std::string candidate_series;

  // --- SLA outcome (all zero/empty without an admission policy) ---
  std::string sla_policy;  ///< admission policy in force ("" = none)
  /// Requests the admission controller turned away (terminal, accounted —
  /// conservation: completed + rejected + lost + unfinished == tasks).
  std::size_t tasks_rejected = 0;
  std::uint64_t tasks_deferred = 0;  ///< defer verdicts (events, not requests)
  std::size_t sla_violations = 0;    ///< completions past their deadline
  double revenue_total = 0.0;        ///< realized value over on-time completions
  /// Concatenated per-client 'A'/'D'/'R' verdict logs, in decision order —
  /// pinned bit-exactly by the SLA determinism tests.
  std::string admission_sequence;
  /// Per-tier outcome (index = tier, 0 = best-effort .. 3 = gold).
  struct SlaTierRow {
    std::size_t admitted = 0;
    std::uint64_t deferred = 0;
    std::size_t rejected = 0;
    std::size_t violated = 0;
  };
  std::vector<SlaTierRow> per_tier;

  // --- gray-failure outcome (all zero without gray processes / deadline) ---
  std::uint64_t stalls = 0;        ///< transient estimation stalls injected
  std::uint64_t flaps = 0;         ///< flap-induced crashes injected
  std::uint64_t limping_seds = 0;  ///< SEDs with permanent added latency
  /// Elections where at least one SED blew the estimation deadline.
  std::uint64_t deadline_misses = 0;
  std::uint64_t hedges = 0;         ///< hedged re-requests issued
  std::uint64_t hedge_rescues = 0;  ///< hedges that recovered the candidate
  std::uint64_t quarantined_skips = 0;  ///< SEDs skipped on an open breaker
  std::uint64_t probe_elections = 0;    ///< half-open probe admissions
  /// Oracle invariant 7: must stay 0 — a quarantined SED never wins.
  std::uint64_t elected_while_quarantined = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;
  /// p99 of the per-election worst estimation wait (seconds).  Observer
  /// mode (no deadline) records the full straggler wait, which is the
  /// honest baseline the hedged/deadline ablation compares against.
  double p99_election_wait_seconds = 0.0;

  // --- migration outcome (all zero/empty without a --migration spec) ---
  std::string migration;  ///< migration spec in force ("" = none)
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_committed = 0;
  std::uint64_t migrations_aborted = 0;
  /// In-doubt INTENT frames found (and healed) during journal recovery.
  std::uint64_t migrations_recovered = 0;
  /// Busy non-candidate nodes handed to the drain hook, summed per check.
  std::uint64_t drain_requests = 0;
  /// Resolution log "<t>:<task>:<src>><dst>:<c|a>;..." — pinned
  /// bit-exactly by the determinism tests across shard/jobs counts.
  std::string migration_sequence;
};

/// Runs one placement experiment to completion (deterministic in `seed`).
///
/// Reentrant: every run owns its whole stack (Simulator, Platform,
/// Hierarchy, policy, workload, RNG) and all randomness flows from
/// `config.seed`, so any number of runs may execute concurrently on
/// different threads — this is the contract the sweep engine builds on.
[[nodiscard]] PlacementResult run_placement(const PlacementConfig& config);

/// Runs the same config under several seeds (the RANDOM envelope of
/// Figs. 6-7).  `config` is never mutated; each run sees a copy whose
/// `seed` is replaced by the corresponding entry of `seeds`.  `jobs`
/// parallelises over a thread pool (0 = hardware concurrency, 1 =
/// serial); the returned vector is ordered like `seeds` and is
/// bit-identical for every `jobs` value.
[[nodiscard]] std::vector<PlacementResult> run_placement_sweep(
    const PlacementConfig& config, const std::vector<std::uint64_t>& seeds,
    std::size_t jobs = 1);

/// Resolves a `--jobs` request to a worker count: 0 means hardware
/// concurrency, and the result never exceeds `task_count` (>= 1).
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs, std::size_t task_count);

}  // namespace greensched::metrics
