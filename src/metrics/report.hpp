// Report rendering: turns experiment results into the tables and series
// the paper prints.
#pragma once

#include <string>
#include <vector>

#include "metrics/experiment.hpp"

namespace greensched::metrics {

/// Table II-style comparison: one column per policy, rows Makespan (s)
/// and Energy (J), plus derived percentage rows.
[[nodiscard]] std::string render_policy_comparison(const std::vector<PlacementResult>& results);

/// Fig. 5-style per-cluster energy table (one row per cluster, one column
/// per policy).
[[nodiscard]] std::string render_cluster_energy(const std::vector<PlacementResult>& results);

/// Fig. 2/3/4-style per-server task distribution with ASCII bars.
[[nodiscard]] std::string render_task_distribution(const PlacementResult& result);

/// Percentage of energy saved by `candidate` relative to `baseline`.
[[nodiscard]] double energy_saving_percent(const PlacementResult& baseline,
                                           const PlacementResult& candidate);
/// Percentage of makespan lost by `candidate` relative to `baseline`.
[[nodiscard]] double makespan_loss_percent(const PlacementResult& baseline,
                                           const PlacementResult& candidate);

}  // namespace greensched::metrics
