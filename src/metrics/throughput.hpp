// Open-loop election-throughput driver.
//
// Where run_placement measures the *simulation* (makespan, energy),
// run_throughput measures the *middleware*: how many scheduling rounds
// per wall-clock second the master agent sustains over a flat tree of N
// SEDs under a seeded open-loop request stream, in any combination of
// serving shards and election batch size.  It is the one harness behind
// both `greensched throughput` and bench_macro_throughput, so the CLI,
// the bench and the determinism tests all agree on what a configuration
// means.
//
// Determinism: the elected sequence (one server name per request, "-"
// when nobody could accept) is a pure function of (seds, requests,
// batch, policy, seed) — the shard count never changes it.  The driver
// exports an FNV-1a fingerprint of the sequence so callers can pin that
// contract without holding 10k strings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace greensched::metrics {

struct ThroughputConfig {
  std::size_t seds = 1000;     ///< flat-tree SED count (scaled Table I mix)
  std::size_t requests = 512;  ///< total scheduling rounds driven
  std::size_t shards = 1;      ///< serving shards on the master
  std::size_t batch = 1;       ///< requests per batched election (1 = submit_fast)
  std::string policy = "GREENPERF";
  std::uint64_t seed = 42;

  /// Throws common::ConfigError on zero counts or a bad policy/shards.
  void validate() const;
};

struct ThroughputResult {
  std::size_t requests = 0;
  std::size_t placed = 0;  ///< rounds that elected a server
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  /// Election-latency quantiles off the diet.election_wall_seconds
  /// histogram: one sample per submit_fast round, one per batch.
  double p50_election_seconds = 0.0;
  double p99_election_seconds = 0.0;
  /// FNV-1a 64-bit fingerprint of the elected sequence.
  std::uint64_t elected_fingerprint = 0;
  /// The elected server name per request ("-" = unplaced), in order.
  std::vector<std::string> elected;
};

/// FNV-1a over a name sequence; exposed so tests can fingerprint their
/// own expectations.
[[nodiscard]] std::uint64_t fingerprint_names(const std::vector<std::string>& names);

/// Runs one throughput measurement.  Requires telemetry for the latency
/// quantiles: the driver enables it, resets collected data first, and
/// leaves it in the state it found it.
[[nodiscard]] ThroughputResult run_throughput(const ThroughputConfig& config);

}  // namespace greensched::metrics
