// Energy accounting: platform-wide and per-cluster snapshots and deltas.
//
// The paper reports whole-experiment joules (Table II), per-cluster
// joules (Fig. 5) and 10-minute mean power (Fig. 9); this module produces
// all three from the nodes' exact energy integrals.
#pragma once

#include <string>
#include <vector>

#include "cluster/platform.hpp"

namespace greensched::metrics {

struct NodeEnergy {
  std::string node;
  std::string cluster;
  common::Joules energy{0.0};
};

struct ClusterEnergy {
  std::string cluster;
  common::Joules energy{0.0};
  std::size_t nodes = 0;
};

/// A full platform energy snapshot at one instant.
class EnergySnapshot {
 public:
  EnergySnapshot() = default;
  /// Reads every node's energy integral at `at`.
  EnergySnapshot(cluster::Platform& platform, common::Seconds at);

  [[nodiscard]] common::Seconds time() const noexcept { return time_; }
  [[nodiscard]] common::Joules total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<NodeEnergy>& per_node() const noexcept { return per_node_; }
  [[nodiscard]] std::vector<ClusterEnergy> per_cluster() const;

  /// Energy consumed between `earlier` and this snapshot; throws
  /// StateError if `earlier` is not actually earlier.
  [[nodiscard]] common::Joules since(const EnergySnapshot& earlier) const;
  /// Mean platform power between `earlier` and this snapshot.
  [[nodiscard]] common::Watts mean_power_since(const EnergySnapshot& earlier) const;

 private:
  common::Seconds time_{0.0};
  common::Joules total_{0.0};
  std::vector<NodeEnergy> per_node_;
};

}  // namespace greensched::metrics
