#include "metrics/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <optional>

#include "chaos/injector.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "des/simulator.hpp"
#include "diet/client.hpp"
#include "diet/hierarchy.hpp"
#include "green/policies.hpp"
#include "green/provisioner.hpp"
#include "migrate/migration.hpp"
#include "sla/admission.hpp"
#include "sla/tier.hpp"
#include "telemetry/telemetry.hpp"

namespace greensched::metrics {

using cluster::MachineCatalog;
using common::Seconds;

namespace {

/// Collapses a multi-core spec into a single-slot server: same total
/// speed and peak power, one core — so one task drives the server to its
/// "maximal performance and power" as in the Fig. 6/7 simulations.
cluster::NodeSpec single_slot(cluster::NodeSpec spec) {
  spec.flops_per_core = spec.total_flops();
  spec.cores = 1;
  // A single busy core now means full load, so idle stays idle and busy
  // is peak — exactly the simulation's assumption.
  spec.validate();
  return spec;
}

}  // namespace

std::vector<ClusterSetup> table1_clusters() {
  std::vector<ClusterSetup> out;
  cluster::ClusterOptions four;
  four.node_count = 4;
  out.push_back({"orion", MachineCatalog::orion(), four});
  out.push_back({"sagittaire", MachineCatalog::sagittaire(), four});
  out.push_back({"taurus", MachineCatalog::taurus(), four});
  return out;
}

std::vector<ClusterSetup> low_heterogeneity_clusters(std::size_t per_type) {
  std::vector<ClusterSetup> out;
  cluster::ClusterOptions options;
  options.node_count = per_type;
  out.push_back({"orion", single_slot(MachineCatalog::orion()), options});
  out.push_back({"taurus", single_slot(MachineCatalog::taurus()), options});
  return out;
}

std::vector<ClusterSetup> high_heterogeneity_clusters(std::size_t per_type) {
  std::vector<ClusterSetup> out;
  cluster::ClusterOptions options;
  options.node_count = per_type;
  out.push_back({"orion", single_slot(MachineCatalog::orion()), options});
  out.push_back({"taurus", single_slot(MachineCatalog::taurus()), options});
  out.push_back({"sim1", single_slot(MachineCatalog::sim1()), options});
  out.push_back({"sim2", single_slot(MachineCatalog::sim2()), options});
  return out;
}

std::vector<ClusterSetup> scaled_clusters(std::size_t total_nodes) {
  if (total_nodes == 0)
    throw common::ConfigError("scaled_clusters: need at least one node");
  std::vector<ClusterSetup> out = table1_clusters();
  const std::size_t types = out.size();
  const std::size_t base = total_nodes / types;
  const std::size_t remainder = total_nodes % types;
  for (std::size_t i = 0; i < types; ++i) {
    out[i].options.node_count = base + (i < remainder ? 1 : 0);
  }
  std::erase_if(out, [](const ClusterSetup& s) { return s.options.node_count == 0; });
  return out;
}

PlacementResult run_placement(const PlacementConfig& config) {
  if (config.clusters.empty())
    throw common::ConfigError("run_placement: no clusters configured");
  if (config.client_count == 0)
    throw common::ConfigError("run_placement: need at least one client");

  telemetry::TraceSpan run_span("run.placement", "engine", config.seed, config.policy);

  des::Simulator sim;
  common::Rng rng(config.seed);

  cluster::Platform platform;
  for (const auto& setup : config.clusters) {
    platform.add_cluster(setup.name, setup.spec, setup.options, rng);
  }

  diet::Hierarchy hierarchy(sim, rng);
  const std::set<std::string> services{config.workload.task.service};
  diet::MasterAgent& ma = config.per_cluster_tree
                              ? hierarchy.build_per_cluster(platform, services, config.sed)
                              : hierarchy.build_flat(platform, services, config.sed);

  // With an admission policy the SLA plug-in (net-revenue ranking) takes
  // over as the MA's aggregation method; the green policy is not even
  // constructed.  Without one, nothing changes.
  const bool sla_admission = !config.sla_policy.empty();
  std::unique_ptr<diet::PluginScheduler> policy;
  if (!sla_admission) {
    policy = green::make_policy(config.policy,
                                config.spec_fallback ? green::UnknownRanking::kSpecFallback
                                                     : green::UnknownRanking::kExploreFirst);
    ma.set_plugin(policy.get());
  }

  // Generate the workload and split it round-robin over the clients.
  workload::WorkloadGenerator generator(config.workload);
  std::vector<workload::TaskInstance> tasks;
  if (config.task_count_override != 0) {
    workload::BurstThenContinuousArrival arrival(config.workload.burst_size,
                                                 config.workload.continuous_rate);
    tasks = generator.generate_with(arrival, config.task_count_override, Seconds(0.0), rng);
  } else {
    tasks = generator.generate(platform.total_cores(), rng);
  }
  const std::size_t task_count = tasks.size();

  // SLA decoration draws from its own split, taken only when the profile
  // is live — a disabled profile leaves every other consumer's stream
  // (and so the whole run) untouched.  The split happens *after* workload
  // generation so the task stream is identical across admission policies:
  // the Pareto bench compares policies on the same decorated workload.
  const sla::SlaWorkloadOptions sla_workload = sla::parse_sla_workload(config.sla_workload);
  if (sla_workload.enabled()) {
    common::Rng sla_rng = rng.split();
    sla::apply_sla_profile(tasks, sla_workload, sla_rng);
  }

  std::vector<std::unique_ptr<diet::Client>> clients;
  std::vector<std::vector<workload::TaskInstance>> shares(config.client_count);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    shares[i % config.client_count].push_back(tasks[i]);
  }
  std::vector<std::size_t> expected_tasks(config.client_count);
  for (std::size_t c = 0; c < config.client_count; ++c) expected_tasks[c] = shares[c].size();
  for (std::size_t c = 0; c < config.client_count; ++c) {
    clients.push_back(std::make_unique<diet::Client>(
        hierarchy, "client-" + std::to_string(c), config.retry));
    clients[c]->set_admission_log(sla_admission);
    clients[c]->submit_workload(std::move(shares[c]));
  }

  // Admission control: the controller owns the policy and a split-stream
  // RNG (one split, only when enabled), and wires both MA hooks.
  std::unique_ptr<sla::AdmissionController> admission;
  if (sla_admission) {
    admission = std::make_unique<sla::AdmissionController>(
        sla::make_sla_policy(config.sla_policy), sim, rng);
    admission->install(ma);
  }

  // Serving mode, configured after whichever plug-in path installed its
  // scheduler (the engine clones the installed plug-in per shard).  The
  // determinism contract makes shards > 1 bit-identical to serial.
  ma.configure_serving({config.shards});

  // The gray-failure collect gate: active with an explicit deadline, or
  // in observer mode (deadline 0, nobody excluded) whenever the scenario
  // injects gray processes — so no-deadline runs still report truthful
  // election waits for the ablation baseline.  Pure metadata either way;
  // the elected sequence only changes when a deadline actually excludes.
  if (config.estimation_deadline_seconds > 0.0 || config.chaos.gray_enabled()) {
    diet::EstimationBudget budget;
    budget.deadline_seconds = config.estimation_deadline_seconds;
    budget.hedge = config.hedge;
    ma.configure_estimation_budget(budget);
  }

  // The injector is built *after* every other consumer of the run's RNG,
  // and only when the scenario is live, so an inert scenario leaves the
  // whole draw sequence — and therefore the run — untouched.
  const bool chaotic = config.chaos.enabled();
  std::optional<chaos::ChaosInjector> injector;
  if (chaotic) {
    injector.emplace(hierarchy, config.chaos);
    injector->start();
  }

  // Optional adaptive provisioning: a strategy-driven Provisioner under
  // a flat tariff (the workload, not scheduled events, drives the
  // decisions here).  Everything is RNG-free, so an empty spec leaves
  // the run bit-identical to the pre-strategy-zoo harness.
  green::EventSchedule events;
  green::ProvisioningPlanning planning;
  std::unique_ptr<green::Provisioner> provisioner;
  const bool provisioned = !config.provisioner.empty();
  if (provisioned) {
    events.set_initial_cost(1.0);
    green::ProvisionerConfig pconfig;
    if (config.provisioner_check_seconds <= 0.0) {
      throw common::ConfigError("run_placement: provisioner_check_seconds must be positive");
    }
    pconfig.check_period = des::SimDuration(config.provisioner_check_seconds);
    pconfig.lookahead = des::SimDuration(2.0 * config.provisioner_check_seconds);
    pconfig.strategy = config.provisioner;
    provisioner = std::make_unique<green::Provisioner>(
        sim, platform, ma, green::RuleEngine::paper_default(), events, planning, pconfig);
    // Newly booted capacity must wake queued requests (completions alone
    // cannot: a fully drained pool has none in flight), and the periodic
    // check must stop once every client settled or the run would tick
    // forever.
    provisioner->set_check_hook(
        [&hierarchy](des::SimTime, const green::PlatformStatus&, std::size_t) {
          hierarchy.notify_capacity_change();
        });
    // settled() alone is vacuously true before a client's arrivals fire,
    // so also require the whole workload share to have been submitted.
    // A chaotic run can additionally wedge with requests stuck in a
    // queue no timer will rescue ("unfinished" in the result) — without
    // a watchdog the periodic check would tick forever; 32 checks with
    // zero client progress freeze the pool and let the run drain.
    provisioner->set_stop_predicate(
        [&clients, &expected_tasks, last = std::uint64_t{0}, stale = 0u]() mutable {
          bool all_settled = true;
          std::uint64_t progress = 0;
          for (std::size_t c = 0; c < clients.size(); ++c) {
            if (clients[c]->submitted() < expected_tasks[c] || !clients[c]->settled())
              all_settled = false;
            progress += clients[c]->submitted() + clients[c]->completed() +
                        clients[c]->lost() + clients[c]->retries() +
                        clients[c]->rejected() + clients[c]->deferrals();
          }
          if (all_settled) return true;
          if (progress == last && ++stale >= 32) return true;
          if (progress != last) {
            stale = 0;
            last = progress;
          }
          return false;
        });
    provisioner->start();
  }

  // Live migration: built only with an explicit spec (RNG-free, so an
  // empty spec leaves the run bit-identical), and driven entirely by the
  // provisioner's drain hook — it has no pulse of its own.
  std::unique_ptr<migrate::MigrationController> migration;
  if (!config.migration.empty()) {
    if (!provisioned)
      throw common::ConfigError(
          "run_placement: migration requires a provisioner (the drain hook drives it)");
    migration = std::make_unique<migrate::MigrationController>(
        hierarchy, migrate::parse_migration_options(config.migration));
    if (!config.migration_journal.empty()) migration->open_journal(config.migration_journal);
    provisioner->set_drain_hook(
        [&migration](des::SimTime at, const std::vector<common::NodeId>& sources,
                     const std::vector<common::NodeId>& targets) {
          migration->drain(at, sources, targets);
        });
  } else if (!config.migration_journal.empty()) {
    throw common::ConfigError("run_placement: migration_journal requires a migration spec");
  }

  sim.run();

  // Without chaos every task must have completed — anything else is a
  // scheduling bug.  Under chaos, losses and stuck requests are a
  // measured outcome, not an error.
  if (!chaotic) {
    for (const auto& client : clients) {
      if (!client->all_done())
        throw common::StateError("run_placement: client '" + client->name() +
                                 "' finished with unplaced or incomplete tasks");
    }
  }

  PlacementResult result;
  result.policy = config.policy;
  result.seed = config.seed;
  result.tasks = task_count;
  result.sim_events = sim.executed();
  for (const auto& client : clients) {
    result.tasks_completed += client->completed();
    result.tasks_lost += client->lost();
    result.retries += client->retries();
    result.tasks_rejected += client->rejected();
    result.tasks_deferred += client->deferrals();
    result.sla_violations += client->violations();
    result.revenue_total += client->revenue_total();
  }
  result.tasks_unfinished =
      task_count - result.tasks_completed - result.tasks_lost - result.tasks_rejected;
  if (admission) {
    result.sla_policy = config.sla_policy;
    for (const auto& client : clients) result.admission_sequence += client->admission_log();
  }
  if (admission || sla_workload.enabled()) {
    result.per_tier.assign(workload::kSlaTierCount, PlacementResult::SlaTierRow{});
    for (const auto& client : clients) {
      for (const auto& r : client->records()) {
        PlacementResult::SlaTierRow& row = result.per_tier[r.task.spec.sla_tier];
        if (r.admitted) ++row.admitted;
        row.deferred += r.deferrals;
        if (r.rejected) ++row.rejected;
        if (r.violated) ++row.violated;
      }
    }
  }
  if (provisioner) {
    result.provisioner = config.provisioner;
    result.provisioner_checks = provisioner->checks();
    result.boots_ordered = provisioner->boots_ordered();
    result.shutdowns_ordered = provisioner->shutdowns_ordered();
    result.degraded_checks = provisioner->degraded_checks();
    result.mean_target_gap = provisioner->mean_target_gap();
    const common::TimeSeries& series = provisioner->candidate_series();
    const std::vector<double>& times = series.times();
    const std::vector<double>& values = series.values();
    double sum = 0.0;
    std::string serialized;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sum += values[i];
      char entry[64];
      std::snprintf(entry, sizeof entry, "%.17g:%.17g", times[i], values[i]);
      if (!serialized.empty()) serialized += ';';
      serialized += entry;
    }
    result.mean_candidates =
        values.empty() ? 0.0 : sum / static_cast<double>(values.size());
    result.candidate_series = std::move(serialized);
  }
  if (migration) {
    result.migration = config.migration;
    result.migrations_started = migration->started();
    result.migrations_committed = migration->committed();
    result.migrations_aborted = migration->aborted();
    result.migrations_recovered = migration->recovered_intents();
    result.drain_requests = provisioner->drain_requests();
    result.migration_sequence = migration->sequence();
  }
  if (injector) {
    result.tasks_killed = injector->tasks_killed();
    result.crashes = injector->crashes();
    result.repairs = injector->repairs();
    result.cluster_outages = injector->cluster_outages();
    result.boot_failures = injector->boot_failures();
    result.stalls = injector->stalls();
    result.flaps = injector->flaps();
    result.limping_seds = injector->limping_seds();
  }
  if (ma.estimation_gate_enabled()) {
    result.deadline_misses = ma.deadline_misses();
    result.hedges = ma.hedges();
    result.hedge_rescues = ma.hedge_rescues();
    result.quarantined_skips = ma.quarantined_skips();
    result.probe_elections = ma.probe_elections();
    result.elected_while_quarantined = ma.elected_while_quarantined();
    result.p99_election_wait_seconds = ma.p99_election_wait_seconds();
    if (const diet::FailureDetector* fd = ma.failure_detector()) {
      result.breaker_opens = fd->opens();
      result.breaker_half_opens = fd->half_opens();
      result.breaker_closes = fd->closes();
    }
  }

  double makespan = 0.0;
  double wait_sum = 0.0;
  std::size_t wait_count = 0;
  std::map<std::string, std::size_t> per_server;
  for (const auto& client : clients) {
    if (client->completed() > 0) makespan = std::max(makespan, client->makespan().value());
    for (const auto& r : client->records()) {
      if (r.start) {
        wait_sum += (r.start->value() - r.submit.value());
        ++wait_count;
      }
      if (!r.server.empty() && r.end) ++per_server[r.server];
    }
  }
  result.makespan = Seconds(makespan);
  result.mean_wait_seconds = wait_count ? wait_sum / static_cast<double>(wait_count) : 0.0;
  result.tasks_per_server.assign(per_server.begin(), per_server.end());

  // Whole-infrastructure energy over the experiment (idle draw included,
  // as the wattmeters of the testbed would measure it).  A chaotic run
  // integrates to the end of the repair tail, not just the last
  // completion, so crash/repair power is conserved in the accounting; a
  // provisioned run likewise integrates to the provisioner's final check,
  // which has already advanced the node power clocks past the makespan.
  EnergySnapshot snapshot(platform,
                          chaotic || provisioned ? sim.now() : Seconds(makespan));
  result.energy = snapshot.total();
  for (const auto& c : snapshot.per_cluster()) {
    result.per_cluster.push_back(ClusterEnergyRow{c.cluster, c.energy});
  }
  return result;
}

std::vector<PlacementResult> run_placement_sweep(const PlacementConfig& config,
                                                 const std::vector<std::uint64_t>& seeds,
                                                 std::size_t jobs) {
  std::vector<PlacementResult> results(seeds.size());
  const std::size_t workers = resolve_jobs(jobs, seeds.size());
  auto run_seed = [&](std::size_t i) {
    PlacementConfig run_config = config;  // the input config stays untouched
    run_config.seed = seeds[i];
    results[i] = run_placement(run_config);
  };
  if (workers <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) run_seed(i);
    return results;
  }
  common::ThreadPool pool(workers);
  std::vector<std::size_t> indices(seeds.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // Each slot of `results` is written by exactly one task; ordering by
  // seed index (not completion) keeps the output identical to serial.
  common::parallel_for_each(pool, indices, run_seed);
  return results;
}

std::size_t resolve_jobs(std::size_t jobs, std::size_t task_count) {
  if (jobs == 0) jobs = common::ThreadPool::default_worker_count();
  return std::max<std::size_t>(1, std::min(jobs, task_count));
}

}  // namespace greensched::metrics
