// Power-log analysis.
//
// The authors' earlier work ("An analysis of power consumption logs from
// a monitored grid site", GreenCom 2010 — reference [23]) motivates the
// dynamic method: wattmeter logs show long low-utilization periods and
// per-node variation.  This analyzer produces the same kind of summary
// from a wattmeter's sample series: mean/min/max/σ, the time share spent
// near idle and near peak, a power histogram and fixed-window
// downsampling (Fig. 9's 10-minute means).
#pragma once

#include "common/stats.hpp"

namespace greensched::metrics {

struct PowerLogSummary {
  std::size_t samples = 0;
  double mean_watts = 0.0;
  double min_watts = 0.0;
  double max_watts = 0.0;
  double stddev_watts = 0.0;
  double energy_joules = 0.0;   ///< trapezoidal integral of the series
  double idle_fraction = 0.0;   ///< samples within the idle band of min
  double peak_fraction = 0.0;   ///< samples within the peak band of max
};

struct PowerLogConfig {
  double idle_band_watts = 10.0;  ///< "near idle" means min + band
  double peak_band_watts = 10.0;  ///< "near peak" means max - band
};

class PowerLogAnalyzer {
 public:
  explicit PowerLogAnalyzer(PowerLogConfig config = {});

  /// Full-series summary; throws ConfigError on an empty series.
  [[nodiscard]] PowerLogSummary summarize(const common::TimeSeries& series) const;

  /// Power-value histogram over [min, max] of the series.
  [[nodiscard]] common::Histogram histogram(const common::TimeSeries& series,
                                            std::size_t bins) const;

  /// Downsamples to one mean value per `window_seconds` (the Fig. 9
  /// "average value of energy consumption measured during the previous
  /// 10 minutes" series).
  [[nodiscard]] common::TimeSeries resample(const common::TimeSeries& series,
                                            double window_seconds) const;

 private:
  PowerLogConfig config_;
};

}  // namespace greensched::metrics
