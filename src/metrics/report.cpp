#include "metrics/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace greensched::metrics {

using common::TextTable;

std::string render_policy_comparison(const std::vector<PlacementResult>& results) {
  if (results.empty()) throw common::ConfigError("render_policy_comparison: no results");
  std::vector<std::string> headers{"Metric"};
  for (const auto& r : results) headers.push_back(r.policy);
  TextTable table(std::move(headers));

  std::vector<std::string> makespan_row{"Makespan (s)"};
  std::vector<std::string> energy_row{"Energy (J)"};
  std::vector<std::string> tasks_row{"Tasks"};
  for (const auto& r : results) {
    makespan_row.push_back(TextTable::grouped(std::llround(r.makespan.value())));
    energy_row.push_back(TextTable::grouped(std::llround(r.energy.value())));
    tasks_row.push_back(TextTable::integer(static_cast<long long>(r.tasks)));
  }
  table.add_row(std::move(makespan_row));
  table.add_row(std::move(energy_row));
  table.add_row(std::move(tasks_row));
  return table.render();
}

std::string render_cluster_energy(const std::vector<PlacementResult>& results) {
  if (results.empty()) throw common::ConfigError("render_cluster_energy: no results");
  // Collect the union of cluster names, preserving first-seen order.
  std::vector<std::string> cluster_names;
  for (const auto& r : results) {
    for (const auto& c : r.per_cluster) {
      if (std::find(cluster_names.begin(), cluster_names.end(), c.cluster) ==
          cluster_names.end()) {
        cluster_names.push_back(c.cluster);
      }
    }
  }

  std::vector<std::string> headers{"Cluster"};
  for (const auto& r : results) headers.push_back(r.policy + " (J)");
  TextTable table(std::move(headers));
  for (const auto& name : cluster_names) {
    std::vector<std::string> row{name};
    for (const auto& r : results) {
      double joules = 0.0;
      for (const auto& c : r.per_cluster) {
        if (c.cluster == name) joules = c.energy.value();
      }
      row.push_back(TextTable::grouped(std::llround(joules)));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_task_distribution(const PlacementResult& result) {
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& [server, count] : result.tasks_per_server) {
    bars.emplace_back(server, static_cast<double>(count));
  }
  std::ostringstream os;
  os << "Tasks per server under " << result.policy << " (" << result.tasks << " tasks total):\n";
  os << common::ascii_bars(bars);
  return os.str();
}

double energy_saving_percent(const PlacementResult& baseline, const PlacementResult& candidate) {
  if (baseline.energy.value() <= 0.0)
    throw common::ConfigError("energy_saving_percent: baseline energy must be positive");
  return (baseline.energy.value() - candidate.energy.value()) / baseline.energy.value() * 100.0;
}

double makespan_loss_percent(const PlacementResult& baseline, const PlacementResult& candidate) {
  if (baseline.makespan.value() <= 0.0)
    throw common::ConfigError("makespan_loss_percent: baseline makespan must be positive");
  return (candidate.makespan.value() - baseline.makespan.value()) / baseline.makespan.value() *
         100.0;
}

}  // namespace greensched::metrics
