#include "metrics/power_log.hpp"

#include <cmath>

#include "common/error.hpp"

namespace greensched::metrics {

using common::ConfigError;

PowerLogAnalyzer::PowerLogAnalyzer(PowerLogConfig config) : config_(config) {
  if (config_.idle_band_watts < 0.0 || config_.peak_band_watts < 0.0)
    throw ConfigError("PowerLogAnalyzer: bands must be non-negative");
}

PowerLogSummary PowerLogAnalyzer::summarize(const common::TimeSeries& series) const {
  if (series.empty()) throw ConfigError("PowerLogAnalyzer: empty series");

  common::RunningStats stats;
  for (std::size_t i = 0; i < series.size(); ++i) stats.add(series.value_at(i));

  PowerLogSummary summary;
  summary.samples = stats.count();
  summary.mean_watts = stats.mean();
  summary.min_watts = stats.min();
  summary.max_watts = stats.max();
  summary.stddev_watts = stats.stddev();
  summary.energy_joules = series.integrate();

  std::size_t idle = 0, peak = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double v = series.value_at(i);
    if (v <= stats.min() + config_.idle_band_watts) ++idle;
    if (v >= stats.max() - config_.peak_band_watts) ++peak;
  }
  summary.idle_fraction = static_cast<double>(idle) / static_cast<double>(series.size());
  summary.peak_fraction = static_cast<double>(peak) / static_cast<double>(series.size());
  return summary;
}

common::Histogram PowerLogAnalyzer::histogram(const common::TimeSeries& series,
                                              std::size_t bins) const {
  const PowerLogSummary summary = summarize(series);
  const double lo = summary.min_watts;
  // A flat series still needs a non-degenerate range.
  const double hi = summary.max_watts > lo ? summary.max_watts + 1e-9 : lo + 1.0;
  common::Histogram h(lo, hi, bins);
  for (std::size_t i = 0; i < series.size(); ++i) h.add(series.value_at(i));
  return h;
}

common::TimeSeries PowerLogAnalyzer::resample(const common::TimeSeries& series,
                                              double window_seconds) const {
  if (window_seconds <= 0.0)
    throw ConfigError("PowerLogAnalyzer: window must be positive");
  common::TimeSeries out;
  if (series.empty()) return out;
  const double start = series.time_at(0);
  const double end = series.time_at(series.size() - 1);
  for (double t = start + window_seconds; t <= end + 1e-9; t += window_seconds) {
    out.add(t, series.window_average(t - window_seconds, t));
  }
  return out;
}

}  // namespace greensched::metrics
