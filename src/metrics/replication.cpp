#include "metrics/replication.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace greensched::metrics {

std::string Estimate::to_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f (n=%zu)", precision, mean, precision, ci95,
                n);
  return buf;
}

Estimate estimate_from(const std::vector<double>& samples) {
  if (samples.empty()) throw common::ConfigError("estimate_from: no samples");
  common::RunningStats stats;
  for (double s : samples) stats.add(s);
  Estimate e;
  e.mean = stats.mean();
  e.stddev = stats.stddev();
  e.n = stats.count();
  e.min = stats.min();
  e.max = stats.max();
  if (e.n >= 2) e.ci95 = 1.96 * e.stddev / std::sqrt(static_cast<double>(e.n));
  return e;
}

bool intervals_overlap(const Estimate& a, const Estimate& b) {
  return a.mean - a.ci95 <= b.mean + b.ci95 && b.mean - b.ci95 <= a.mean + a.ci95;
}

std::vector<std::uint64_t> default_seeds(std::size_t n) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) seeds.push_back(i);
  return seeds;
}

ReplicatedResult run_replicated(PlacementConfig config,
                                const std::vector<std::uint64_t>& seeds) {
  if (seeds.empty()) throw common::ConfigError("run_replicated: no seeds");
  ReplicatedResult result;
  result.policy = config.policy;
  std::vector<double> makespans, energies, waits;
  for (std::uint64_t seed : seeds) {
    config.seed = seed;
    result.runs.push_back(run_placement(config));
    makespans.push_back(result.runs.back().makespan.value());
    energies.push_back(result.runs.back().energy.value());
    waits.push_back(result.runs.back().mean_wait_seconds);
  }
  result.makespan_seconds = estimate_from(makespans);
  result.energy_joules = estimate_from(energies);
  result.mean_wait_seconds = estimate_from(waits);
  return result;
}

}  // namespace greensched::metrics
