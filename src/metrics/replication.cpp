#include "metrics/replication.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace greensched::metrics {

std::string Estimate::to_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f (n=%zu)", precision, mean, precision, ci95,
                n);
  return buf;
}

Estimate estimate_from(const std::vector<double>& samples) {
  if (samples.empty()) throw common::ConfigError("estimate_from: no samples");
  common::RunningStats stats;
  for (double s : samples) stats.add(s);
  Estimate e;
  e.mean = stats.mean();
  e.stddev = stats.stddev();
  e.n = stats.count();
  e.min = stats.min();
  e.max = stats.max();
  if (e.n >= 2) e.ci95 = 1.96 * e.stddev / std::sqrt(static_cast<double>(e.n));
  return e;
}

bool intervals_overlap(const Estimate& a, const Estimate& b) {
  return a.mean - a.ci95 <= b.mean + b.ci95 && b.mean - b.ci95 <= a.mean + a.ci95;
}

std::vector<std::uint64_t> default_seeds(std::size_t n) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) seeds.push_back(i);
  return seeds;
}

ReplicatedResult aggregate_runs(std::string policy, std::vector<PlacementResult> runs) {
  if (runs.empty()) throw common::ConfigError("aggregate_runs: no runs");
  ReplicatedResult result;
  result.policy = std::move(policy);
  std::vector<double> makespans, energies, waits;
  makespans.reserve(runs.size());
  energies.reserve(runs.size());
  waits.reserve(runs.size());
  for (const PlacementResult& run : runs) {
    makespans.push_back(run.makespan.value());
    energies.push_back(run.energy.value());
    waits.push_back(run.mean_wait_seconds);
  }
  result.makespan_seconds = estimate_from(makespans);
  result.energy_joules = estimate_from(energies);
  result.mean_wait_seconds = estimate_from(waits);
  result.runs = std::move(runs);
  return result;
}

ReplicatedResult run_replicated(const PlacementConfig& config,
                                const std::vector<std::uint64_t>& seeds, std::size_t jobs) {
  if (seeds.empty()) throw common::ConfigError("run_replicated: no seeds");
  return aggregate_runs(config.policy, run_placement_sweep(config, seeds, jobs));
}

}  // namespace greensched::metrics
