// Grid sweep engine: many placement configurations × many seeds on a
// thread pool.
//
// The paper's evaluation (Section IV) is a grid of independent runs —
// policies × seeds × heterogeneity levels.  `SweepRunner` executes an
// arbitrary such grid on a `common::ThreadPool`, exploiting that
// `run_placement` is reentrant (see experiment.hpp).  Determinism
// contract: every (point, seed) cell is computed by an isolated run
// seeded only by its seed, and cells are stored by grid position, never
// by completion order — so the output is bit-identical for any `jobs`
// value, including serial.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "metrics/replication.hpp"

namespace greensched::metrics {

/// One grid point: a labelled configuration.  The config's `seed` field
/// is ignored; seeds come from `SweepOptions` (same override contract as
/// run_replicated).
struct SweepPoint {
  std::string label;
  PlacementConfig config;
};

struct SweepOptions {
  std::vector<std::uint64_t> seeds = default_seeds(5);
  /// Worker threads: 0 = hardware concurrency, 1 = serial.
  std::size_t jobs = 1;
  /// When non-empty (and telemetry is enabled), each grid point's trace
  /// events are exported to `<trace_dir>/<label>.trace.json` after the
  /// run (Chrome trace_event format).  Cells tag their events with a
  /// `ScopedRunContext` labelled "<label>/seed<seed>" either way.
  std::string trace_dir;
  /// When non-empty, completed cells are persisted to
  /// `<checkpoint_dir>/cells.journal` and a re-run of the same grid
  /// skips them (`greensched sweep --resume DIR`).  Results are stored
  /// bit-exactly, so a resumed sweep's output is byte-identical to an
  /// uninterrupted one.  A directory holding a *different* grid's
  /// manifest is rejected with ConfigError.
  std::string checkpoint_dir;
};

/// Aggregated outcome of one grid point across all seeds.
struct SweepRow {
  std::string label;
  std::string policy;
  ReplicatedResult replicated;  ///< runs ordered like the seed list
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Adds one grid point.  Returns *this for chaining.
  SweepRunner& add(std::string label, PlacementConfig config);
  /// Adds one point per policy, cloning `base` (label = policy name).
  SweepRunner& add_policies(const PlacementConfig& base,
                            const std::vector<std::string>& policies);
  /// Adds one point per provisioning strategy spec, cloning `base`
  /// (label = spec, or "none" for the empty spec).  The strategy zoo's
  /// comparison axis.
  SweepRunner& add_strategies(const PlacementConfig& base,
                              const std::vector<std::string>& strategies);
  /// Adds one point per SLA admission policy spec, cloning `base`
  /// (label = spec, or "none" for the empty spec).  The admission-control
  /// comparison axis: every point replays the same decorated workload.
  SweepRunner& add_sla_policies(const PlacementConfig& base,
                                const std::vector<std::string>& policies);

  [[nodiscard]] std::size_t point_count() const noexcept { return points_.size(); }
  [[nodiscard]] const SweepOptions& options() const noexcept { return options_; }

  /// Executes the whole grid (points × seeds cells, each a self-contained
  /// run) and aggregates per point.  Const and reentrant: the runner
  /// itself may be shared across threads once configured.  With a
  /// checkpoint_dir, previously-completed cells are restored instead of
  /// re-run and fresh cells are persisted as they finish.
  [[nodiscard]] std::vector<SweepRow> run() const;

  /// Cells of this grid already present in options().checkpoint_dir
  /// (0 when checkpointing is off or the directory is fresh).  Useful
  /// for "resuming: k/n cells done" progress reports.
  [[nodiscard]] std::size_t checkpointed_cells() const;

  /// Aggregate CSV: one row per grid point (mean/ci95/min/max per metric).
  static void write_csv(std::ostream& out, const std::vector<SweepRow>& rows);
  /// Raw CSV: one row per (point, seed) run.
  static void write_runs_csv(std::ostream& out, const std::vector<SweepRow>& rows);
  /// Provisioning-comparison CSV: one row per (point, seed) run with the
  /// strategy-zoo metrics (energy, lost tasks, boots, reactivity).  A
  /// separate schema so the golden Table II pin on write_runs_csv never
  /// moves.
  static void write_provisioning_csv(std::ostream& out, const std::vector<SweepRow>& rows);
  /// SLA-comparison CSV: one row per (point, seed) run with the admission
  /// outcome (admitted/deferred/rejected/violated, revenue, energy).  A
  /// separate schema so the existing CSV pins never move.
  static void write_sla_csv(std::ostream& out, const std::vector<SweepRow>& rows);

 private:
  /// Splits the collected trace by grid point and writes one Chrome-trace
  /// JSON file per point into `options_.trace_dir`.
  void export_traces() const;

  SweepOptions options_;
  std::vector<SweepPoint> points_;
};

}  // namespace greensched::metrics
