// Checkpoint/resume for SweepRunner grids.
//
// A sweep is a grid of (point, seed) cells, each an expensive yet
// deterministic run (the PR 1 seed-determinism contract).  The
// checkpoint records every finished cell in a durable::Journal manifest
// so an interrupted sweep resumes by *skipping* completed cells — and
// because cell results are stored bitwise (IEEE-754 bit patterns) and
// slotted by grid position, the resumed sweep's CSV is byte-identical
// to an uninterrupted run.
//
//   <dir>/cells.journal    record 0: grid fingerprint
//                          record N: cell index + PlacementResult
//
// The fingerprint digests everything that shapes cell outcomes
// (labels, policies, seeds, platform, workload, chaos, retry).  A
// manifest whose fingerprint differs from the configured grid is
// rejected — resuming someone else's sweep would silently fabricate
// results.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "durable/journal.hpp"
#include "metrics/sweep.hpp"

namespace greensched::metrics {

/// Digest of a sweep grid: every knob that can change a cell's result.
[[nodiscard]] std::string grid_fingerprint(const std::vector<SweepPoint>& points,
                                           const std::vector<std::uint64_t>& seeds);

/// Bit-exact binary round trip for one cell result.
[[nodiscard]] std::string encode_placement_result(const PlacementResult& result);
/// Throws common::ParseError on malformed payloads.
[[nodiscard]] PlacementResult decode_placement_result(std::string_view payload);

class SweepCheckpoint {
 public:
  /// Opens (creating) the checkpoint directory.  An existing manifest is
  /// replayed: fingerprint verified (common::ConfigError on mismatch),
  /// torn tail truncated, completed cells loaded.  A manifest that is
  /// unusable from the first byte is quarantined and a fresh one
  /// started.  Throws common::IoError on environment failures.
  SweepCheckpoint(std::filesystem::path dir, std::string fingerprint);

  /// Cells already completed in a previous run, keyed by flat cell index.
  [[nodiscard]] const std::map<std::size_t, PlacementResult>& completed() const noexcept {
    return completed_;
  }

  /// Persists one finished cell (fsynced before returning).  Thread-safe.
  void record(std::size_t cell, const PlacementResult& result);

  /// True when the previous manifest ended in a torn record.
  [[nodiscard]] bool tail_truncated() const noexcept { return tail_truncated_; }

  static constexpr const char* kManifestFile = "cells.journal";

 private:
  std::filesystem::path dir_;
  std::optional<durable::Journal> journal_;
  std::map<std::size_t, PlacementResult> completed_;
  std::mutex mutex_;
  bool tail_truncated_ = false;
};

}  // namespace greensched::metrics
