#include "metrics/config_io.hpp"

#include <cmath>

#include "cluster/catalog.hpp"
#include "common/error.hpp"
#include "migrate/migration.hpp"
#include "sla/admission.hpp"
#include "sla/tier.hpp"

namespace greensched::metrics {

using common::ConfigError;
using xmlite::Document;
using xmlite::Element;
using xmlite::ParseError;

namespace {

/// Experiment files are hand-edited; a stray "nan", "1e999" or absurd
/// count must die here with the field name, not deep in the simulator.
double finite_attribute(const Element& element, const char* key) {
  const double value = element.attribute_as_double(key);
  if (!std::isfinite(value)) {
    throw ConfigError(std::string("experiment file: ") + key + " must be finite");
  }
  return value;
}

long long bounded_count(const Element& element, const char* key, long long min,
                        long long max) {
  const long long value = element.attribute_as_int(key);
  if (value < min || value > max) {
    throw ConfigError(std::string("experiment file: ") + key + " must be in [" +
                      std::to_string(min) + ", " + std::to_string(max) + "], got " +
                      std::to_string(value));
  }
  return value;
}

}  // namespace

xmlite::Document config_to_xml(const PlacementConfig& config) {
  Element root("experiment");
  root.set_attribute("policy", config.policy);
  root.set_attribute("seed", static_cast<long long>(config.seed));
  root.set_attribute("clients", static_cast<long long>(config.client_count));
  root.set_attribute("spec_fallback", static_cast<long long>(config.spec_fallback ? 1 : 0));
  root.set_attribute("per_cluster_tree",
                     static_cast<long long>(config.per_cluster_tree ? 1 : 0));
  if (config.task_count_override != 0) {
    root.set_attribute("task_count", static_cast<long long>(config.task_count_override));
  }
  if (!config.provisioner.empty()) {
    root.set_attribute("provisioner", config.provisioner);
    root.set_attribute("provisioner_check", config.provisioner_check_seconds);
  }
  if (!config.sla_workload.empty()) root.set_attribute("sla_workload", config.sla_workload);
  if (!config.sla_policy.empty()) root.set_attribute("sla_policy", config.sla_policy);
  if (config.shards > 1) root.set_attribute("shards", static_cast<long long>(config.shards));
  // The chaos scenario round-trips through its own key=value spec — the
  // same string the CLI's --scenario takes, so files and flags agree.
  if (config.chaos.enabled()) root.set_attribute("chaos", config.chaos.to_string());
  if (config.estimation_deadline_seconds > 0.0) {
    root.set_attribute("estimation_deadline", config.estimation_deadline_seconds);
  }
  if (config.hedge) root.set_attribute("hedge", "1");
  if (!config.migration.empty()) root.set_attribute("migration", config.migration);

  for (const auto& setup : config.clusters) {
    Element& cluster = root.add_child("cluster");
    // Only catalog machines are expressible in the file format; custom
    // specs must be built programmatically.
    cluster.set_attribute("machine", setup.spec.model);
    if (setup.name != setup.spec.model) cluster.set_attribute("name", setup.name);
    cluster.set_attribute("count", static_cast<long long>(setup.options.node_count));
    if (setup.options.power_heterogeneity != 0.0) {
      cluster.set_attribute("power_heterogeneity", setup.options.power_heterogeneity);
    }
    if (setup.options.speed_heterogeneity != 0.0) {
      cluster.set_attribute("speed_heterogeneity", setup.options.speed_heterogeneity);
    }
    if (!setup.options.initially_on) cluster.set_attribute("initially_on", "0");
  }

  Element& workload = root.add_child("workload");
  workload.set_attribute("requests_per_core", config.workload.requests_per_core);
  workload.set_attribute("burst", static_cast<long long>(config.workload.burst_size));
  workload.set_attribute("rate", config.workload.continuous_rate);
  workload.set_attribute("work_flops", config.workload.task.work.value());
  workload.set_attribute("service", config.workload.task.service);
  if (config.workload.user_preference != 0.0) {
    workload.set_attribute("user_preference", config.workload.user_preference);
  }
  return Document(std::move(root));
}

std::string config_to_string(const PlacementConfig& config) {
  return config_to_xml(config).to_string();
}

PlacementConfig config_from_xml(const Document& doc) {
  const Element& root = doc.root();
  if (root.name() != "experiment")
    throw ParseError("experiment file: expected <experiment> root, got <" + root.name() + ">",
                     0, 0);

  PlacementConfig config;
  config.policy = root.attribute("policy").value_or("POWER");
  config.seed = static_cast<std::uint64_t>(
      root.has_attribute("seed") ? root.attribute_as_int("seed") : 42);
  config.client_count = static_cast<std::size_t>(
      root.has_attribute("clients") ? bounded_count(root, "clients", 1, 1000000) : 1);
  config.spec_fallback =
      root.has_attribute("spec_fallback") && root.attribute_as_int("spec_fallback") != 0;
  config.per_cluster_tree =
      !root.has_attribute("per_cluster_tree") || root.attribute_as_int("per_cluster_tree") != 0;
  if (root.has_attribute("task_count")) {
    config.task_count_override =
        static_cast<std::size_t>(bounded_count(root, "task_count", 0, 100000000));
  }
  if (auto provisioner = root.attribute("provisioner")) {
    config.provisioner = *provisioner;
  }
  if (root.has_attribute("provisioner_check")) {
    config.provisioner_check_seconds = finite_attribute(root, "provisioner_check");
    if (config.provisioner_check_seconds <= 0.0) {
      throw ConfigError("experiment file: provisioner_check must be positive");
    }
  }
  if (auto sla_workload = root.attribute("sla_workload")) {
    config.sla_workload = *sla_workload;
    (void)sla::parse_sla_workload(config.sla_workload);  // die here, with the field
  }
  if (root.has_attribute("shards")) {
    // Bound matches diet::ShardAssignment::kMaxShards.
    config.shards = static_cast<std::size_t>(bounded_count(root, "shards", 1, 4096));
  }
  if (auto sla_policy = root.attribute("sla_policy")) {
    config.sla_policy = *sla_policy;
    if (!sla::is_sla_policy(config.sla_policy)) {
      throw ConfigError("experiment file: unknown sla_policy '" + config.sla_policy + "'");
    }
  }
  if (auto chaos = root.attribute("chaos")) {
    config.chaos = chaos::ChaosScenario::parse(*chaos);  // validates, names bad keys
  }
  if (root.has_attribute("estimation_deadline")) {
    config.estimation_deadline_seconds = finite_attribute(root, "estimation_deadline");
    if (config.estimation_deadline_seconds < 0.0) {
      throw ConfigError("experiment file: estimation_deadline must be non-negative");
    }
  }
  config.hedge = root.has_attribute("hedge") && root.attribute_as_int("hedge") != 0;
  if (auto migration = root.attribute("migration")) {
    config.migration = *migration;
    (void)migrate::parse_migration_options(config.migration);  // die here, with the field
    if (config.provisioner.empty()) {
      throw ConfigError("experiment file: migration requires a provisioner");
    }
  }

  config.clusters.clear();
  for (const Element* cluster : root.find_children("cluster")) {
    ClusterSetup setup;
    const auto machine = cluster->attribute("machine");
    if (!machine) throw ParseError("experiment file: <cluster> needs a machine attribute", 0, 0);
    setup.spec = cluster::MachineCatalog::by_name(*machine);  // throws on unknown
    setup.name = cluster->attribute("name").value_or(*machine);
    setup.options.node_count =
        static_cast<std::size_t>(bounded_count(*cluster, "count", 1, 1000000));
    if (cluster->has_attribute("power_heterogeneity")) {
      setup.options.power_heterogeneity = finite_attribute(*cluster, "power_heterogeneity");
    }
    if (cluster->has_attribute("speed_heterogeneity")) {
      setup.options.speed_heterogeneity = finite_attribute(*cluster, "speed_heterogeneity");
    }
    if (cluster->has_attribute("initially_on")) {
      setup.options.initially_on = cluster->attribute_as_int("initially_on") != 0;
    }
    config.clusters.push_back(std::move(setup));
  }
  if (config.clusters.empty())
    throw ParseError("experiment file: at least one <cluster> is required", 0, 0);

  if (const Element* workload = root.find_child("workload")) {
    if (workload->has_attribute("requests_per_core")) {
      config.workload.requests_per_core = finite_attribute(*workload, "requests_per_core");
      if (config.workload.requests_per_core < 0.0) {
        throw ConfigError("experiment file: requests_per_core must be non-negative");
      }
    }
    if (workload->has_attribute("burst")) {
      config.workload.burst_size =
          static_cast<std::size_t>(bounded_count(*workload, "burst", 0, 100000000));
    }
    if (workload->has_attribute("rate")) {
      config.workload.continuous_rate = finite_attribute(*workload, "rate");
      if (config.workload.continuous_rate < 0.0) {
        throw ConfigError("experiment file: rate must be non-negative");
      }
    }
    if (workload->has_attribute("work_flops")) {
      config.workload.task.work = common::Flops(finite_attribute(*workload, "work_flops"));
    }
    if (auto service = workload->attribute("service")) {
      config.workload.task.service = *service;
    }
    if (workload->has_attribute("user_preference")) {
      config.workload.user_preference = finite_attribute(*workload, "user_preference");
    }
  }
  return config;
}

PlacementConfig config_from_string(const std::string& text) {
  return config_from_xml(Document::parse(text));
}

}  // namespace greensched::metrics
