#include "metrics/sweep.hpp"

#include <filesystem>
#include <fstream>
#include <numeric>
#include <optional>
#include <ostream>
#include <utility>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "metrics/checkpoint.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace greensched::metrics {

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {
  if (options_.seeds.empty()) throw common::ConfigError("SweepRunner: no seeds");
}

SweepRunner& SweepRunner::add(std::string label, PlacementConfig config) {
  points_.push_back(SweepPoint{std::move(label), std::move(config)});
  return *this;
}

SweepRunner& SweepRunner::add_policies(const PlacementConfig& base,
                                       const std::vector<std::string>& policies) {
  for (const std::string& policy : policies) {
    PlacementConfig config = base;
    config.policy = policy;
    add(policy, std::move(config));
  }
  return *this;
}

SweepRunner& SweepRunner::add_strategies(const PlacementConfig& base,
                                         const std::vector<std::string>& strategies) {
  for (const std::string& strategy : strategies) {
    PlacementConfig config = base;
    config.provisioner = strategy;
    add(strategy.empty() ? "none" : strategy, std::move(config));
  }
  return *this;
}

SweepRunner& SweepRunner::add_sla_policies(const PlacementConfig& base,
                                           const std::vector<std::string>& policies) {
  for (const std::string& policy : policies) {
    PlacementConfig config = base;
    config.sla_policy = policy;
    add(policy.empty() ? "none" : policy, std::move(config));
  }
  return *this;
}

std::vector<SweepRow> SweepRunner::run() const {
  if (points_.empty()) throw common::ConfigError("SweepRunner: no grid points");
  const std::size_t seed_count = options_.seeds.size();
  const std::size_t cell_count = points_.size() * seed_count;

  // One flat slot per (point, seed) cell, written by exactly one task and
  // indexed by grid position so completion order cannot leak in.
  std::vector<PlacementResult> cells(cell_count);

  // Checkpoint/resume: restore completed cells from the manifest and skip
  // them.  Because results are stored bitwise and slotted by grid
  // position, a resumed sweep's aggregate is byte-identical to an
  // uninterrupted one.
  std::optional<SweepCheckpoint> checkpoint;
  std::vector<char> done(cell_count, 0);
  if (!options_.checkpoint_dir.empty()) {
    checkpoint.emplace(options_.checkpoint_dir,
                       grid_fingerprint(points_, options_.seeds));
    for (const auto& [cell, result] : checkpoint->completed()) {
      if (cell >= cell_count) continue;  // defensive: stale manifest slop
      cells[cell] = result;
      done[cell] = 1;
    }
  }

  auto run_cell = [&](std::size_t cell) {
    if (done[cell] != 0) return;  // restored from the checkpoint
    const std::size_t point = cell / seed_count;
    const std::size_t seed = cell % seed_count;
    PlacementConfig config = points_[point].config;  // grid stays immutable
    config.seed = options_.seeds[seed];
    // Tag every event this cell records with its grid position so the
    // merged collection can be split into per-point trace files.
    telemetry::ScopedRunContext context(points_[point].label + "/seed" +
                                        std::to_string(config.seed));
    cells[cell] = run_placement(config);
    if (checkpoint) checkpoint->record(cell, cells[cell]);
  };

  const std::size_t workers = resolve_jobs(options_.jobs, cell_count);
  if (workers <= 1) {
    for (std::size_t cell = 0; cell < cell_count; ++cell) run_cell(cell);
  } else {
    common::ThreadPool pool(workers);
    std::vector<std::size_t> indices(cell_count);
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    common::parallel_for_each(pool, indices, run_cell);
  }

  if (!options_.trace_dir.empty() && telemetry::Telemetry::enabled()) {
    export_traces();
  }

  std::vector<SweepRow> rows;
  rows.reserve(points_.size());
  for (std::size_t point = 0; point < points_.size(); ++point) {
    std::vector<PlacementResult> runs(cells.begin() + point * seed_count,
                                      cells.begin() + (point + 1) * seed_count);
    SweepRow row;
    row.label = points_[point].label;
    row.policy = points_[point].config.policy;
    row.replicated = aggregate_runs(row.policy, std::move(runs));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::size_t SweepRunner::checkpointed_cells() const {
  if (options_.checkpoint_dir.empty()) return 0;
  const std::size_t cell_count = points_.size() * options_.seeds.size();
  SweepCheckpoint checkpoint(options_.checkpoint_dir,
                             grid_fingerprint(points_, options_.seeds));
  std::size_t count = 0;
  for (const auto& [cell, result] : checkpoint.completed()) {
    (void)result;
    if (cell < cell_count) ++count;
  }
  return count;
}

void SweepRunner::export_traces() const {
  // Called after all cells finished (the pool is destroyed), so the
  // collector is quiescent — the collect() contract holds.
  const telemetry::TraceCollector& collector = telemetry::Telemetry::tracing();
  const std::vector<telemetry::TraceEvent> events = telemetry::Telemetry::tracing().collect();
  std::filesystem::create_directories(options_.trace_dir);
  for (const SweepPoint& point : points_) {
    // Cells tag events with "<label>/seed<seed>": gather this point's.
    std::vector<telemetry::TraceEvent> mine;
    const std::string prefix = point.label + "/seed";
    for (const telemetry::TraceEvent& e : events) {
      if (collector.context_label(e.context).starts_with(prefix)) mine.push_back(e);
    }
    std::string file = point.label;
    for (char& c : file) {
      if (c == '/' || c == '\\' || c == ':' || c == ' ') c = '_';
    }
    std::ofstream out(std::filesystem::path(options_.trace_dir) /
                      (file + ".trace.json"));
    if (!out) throw common::StateError("SweepRunner: cannot write trace for '" + point.label + "'");
    telemetry::write_chrome_trace(out, mine, collector);
  }
}

namespace {

void estimate_cells(common::CsvWriter& csv, const Estimate& e) {
  csv.cell(e.mean).cell(e.ci95).cell(e.min).cell(e.max);
}

}  // namespace

void SweepRunner::write_csv(std::ostream& out, const std::vector<SweepRow>& rows) {
  common::CsvWriter csv(out);
  csv.row({"label", "policy", "n", "energy_j_mean", "energy_j_ci95", "energy_j_min",
           "energy_j_max", "makespan_s_mean", "makespan_s_ci95", "makespan_s_min",
           "makespan_s_max", "wait_s_mean", "wait_s_ci95", "wait_s_min", "wait_s_max"});
  for (const SweepRow& row : rows) {
    csv.cell(row.label).cell(row.policy).cell(row.replicated.energy_joules.n);
    estimate_cells(csv, row.replicated.energy_joules);
    estimate_cells(csv, row.replicated.makespan_seconds);
    estimate_cells(csv, row.replicated.mean_wait_seconds);
    csv.end_row();
  }
}

void SweepRunner::write_runs_csv(std::ostream& out, const std::vector<SweepRow>& rows) {
  common::CsvWriter csv(out);
  csv.row({"label", "policy", "seed", "tasks", "makespan_s", "energy_j", "mean_wait_s",
           "sim_events"});
  for (const SweepRow& row : rows) {
    for (const PlacementResult& run : row.replicated.runs) {
      csv.cell(row.label)
          .cell(row.policy)
          .cell(static_cast<std::size_t>(run.seed))
          .cell(run.tasks)
          .cell(run.makespan.value())
          .cell(run.energy.value())
          .cell(run.mean_wait_seconds)
          .cell(static_cast<std::size_t>(run.sim_events));
      csv.end_row();
    }
  }
}

void SweepRunner::write_provisioning_csv(std::ostream& out,
                                         const std::vector<SweepRow>& rows) {
  common::CsvWriter csv(out);
  csv.row({"label", "policy", "provisioner", "seed", "tasks", "completed", "lost",
           "energy_j", "makespan_s", "boots", "shutdowns", "checks", "degraded",
           "mean_candidates", "reactivity_gap"});
  for (const SweepRow& row : rows) {
    for (const PlacementResult& run : row.replicated.runs) {
      csv.cell(row.label)
          .cell(row.policy)
          .cell(run.provisioner.empty() ? std::string("none") : run.provisioner)
          .cell(static_cast<std::size_t>(run.seed))
          .cell(run.tasks)
          .cell(run.tasks_completed)
          .cell(run.tasks_lost)
          .cell(run.energy.value())
          .cell(run.makespan.value())
          .cell(static_cast<std::size_t>(run.boots_ordered))
          .cell(static_cast<std::size_t>(run.shutdowns_ordered))
          .cell(static_cast<std::size_t>(run.provisioner_checks))
          .cell(static_cast<std::size_t>(run.degraded_checks))
          .cell(run.mean_candidates)
          .cell(run.mean_target_gap);
      csv.end_row();
    }
  }
}

void SweepRunner::write_sla_csv(std::ostream& out, const std::vector<SweepRow>& rows) {
  common::CsvWriter csv(out);
  csv.row({"label", "policy", "sla_policy", "seed", "tasks", "completed", "rejected",
           "deferrals", "violations", "lost", "revenue", "energy_j", "makespan_s"});
  for (const SweepRow& row : rows) {
    for (const PlacementResult& run : row.replicated.runs) {
      csv.cell(row.label)
          .cell(row.policy)
          .cell(run.sla_policy.empty() ? std::string("none") : run.sla_policy)
          .cell(static_cast<std::size_t>(run.seed))
          .cell(run.tasks)
          .cell(run.tasks_completed)
          .cell(run.tasks_rejected)
          .cell(static_cast<std::size_t>(run.tasks_deferred))
          .cell(run.sla_violations)
          .cell(run.tasks_lost)
          .cell(run.revenue_total)
          .cell(run.energy.value())
          .cell(run.makespan.value());
      csv.end_row();
    }
  }
}

}  // namespace greensched::metrics
