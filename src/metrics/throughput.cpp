#include "metrics/throughput.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "cluster/platform.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "diet/hierarchy.hpp"
#include "green/policies.hpp"
#include "metrics/experiment.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/task.hpp"

namespace greensched::metrics {

using common::ConfigError;
using telemetry::Telemetry;

void ThroughputConfig::validate() const {
  if (seds == 0) throw ConfigError("throughput: seds must be >= 1");
  if (requests == 0) throw ConfigError("throughput: requests must be >= 1");
  if (batch == 0) throw ConfigError("throughput: batch must be >= 1");
  diet::ServingConfig{shards}.validate();
  (void)green::make_policy(policy);  // die here, with the field name
}

std::uint64_t fingerprint_names(const std::vector<std::string>& names) {
  // FNV-1a 64-bit with a 0xFF separator byte per entry (0xFF never occurs
  // in a server name, so ["ab","c"] and ["a","bc"] hash apart).
  std::uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  for (const std::string& name : names) {
    for (const char c : name) mix(static_cast<unsigned char>(c));
    mix(0xFFu);
  }
  return hash;
}

ThroughputResult run_throughput(const ThroughputConfig& config) {
  config.validate();

  // The latency quantiles come off diet.election_wall_seconds, so the run
  // needs telemetry on and a clean registry; the enabled flag is restored
  // afterwards (collected data is reset up front either way).
  const bool was_enabled = Telemetry::enabled();
  Telemetry::enable();
  Telemetry::reset();

  des::Simulator sim;
  common::Rng rng(config.seed);

  cluster::Platform platform;
  for (const auto& setup : scaled_clusters(config.seds)) {
    platform.add_cluster(setup.name, setup.spec, setup.options, rng);
  }

  diet::Hierarchy hierarchy(sim, rng);
  const workload::TaskSpec spec = workload::paper_cpu_bound_task();
  diet::MasterAgent& ma = hierarchy.build_flat(platform, {spec.service}, {});
  const auto policy = green::make_policy(config.policy);
  ma.set_plugin(policy.get());
  ma.configure_serving({config.shards});

  // Open-loop burst: every round elects against live occupancy (elected
  // tasks start executing immediately) but the simulation clock never
  // advances — nothing completes, exactly the peak-pressure regime a
  // serving benchmark wants.  The paper's 0.5 preference weighs power and
  // performance evenly.
  const auto make_request = [&]() {
    diet::Request request;
    request.id = hierarchy.next_request_id();
    request.task.spec = spec;
    request.task.user_preference = 0.5;
    request.user_preference = 0.5;
    return request;
  };

  ThroughputResult result;
  result.requests = config.requests;
  result.elected.reserve(config.requests);

  std::vector<diet::Request> batch;
  const auto wall_begin = std::chrono::steady_clock::now();
  std::size_t submitted = 0;
  while (submitted < config.requests) {
    const std::size_t round = std::min(config.batch, config.requests - submitted);
    if (config.batch == 1) {
      const diet::Request request = make_request();
      const diet::SchedulingDecision& decision = ma.submit_fast(request);
      if (decision.elected != nullptr) {
        ++result.placed;
        result.elected.push_back(decision.elected->name());
        (void)decision.elected->execute(request.task, request.id, {});
      } else {
        result.elected.emplace_back("-");
      }
    } else {
      batch.clear();
      for (std::size_t i = 0; i < round; ++i) batch.push_back(make_request());
      (void)ma.submit_batch(batch, [&](std::size_t i, const diet::SchedulingDecision& decision) {
        if (decision.elected != nullptr) {
          ++result.placed;
          result.elected.push_back(decision.elected->name());
          (void)decision.elected->execute(batch[i].task, batch[i].id, {});
        } else {
          result.elected.emplace_back("-");
        }
      });
    }
    submitted += round;
  }
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_begin;

  result.wall_seconds = wall.count();
  result.requests_per_second =
      result.wall_seconds > 0.0 ? static_cast<double>(result.requests) / result.wall_seconds : 0.0;
  result.elected_fingerprint = fingerprint_names(result.elected);

  const telemetry::MetricsSnapshot snapshot = Telemetry::metrics().snapshot();
  if (const auto* latency = snapshot.find_histogram("diet.election_wall_seconds")) {
    result.p50_election_seconds = latency->quantile(0.5);
    result.p99_election_seconds = latency->quantile(0.99);
  }

  if (!was_enabled) Telemetry::disable();
  return result;
}

}  // namespace greensched::metrics
