#include "metrics/checkpoint.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "durable/crc32.hpp"
#include "durable/serialize.hpp"
#include "durable/snapshot.hpp"

namespace greensched::metrics {

using common::ConfigError;
using common::IoError;
using common::ParseError;
using durable::ByteReader;
using durable::ByteWriter;

namespace {

// v4: the cell record format gained the migration outcome fields and the
// fingerprint digests the migration spec — older manifests are a
// different experiment by construction and must not be resumed into.
// (v3 added the gray-failure fields and deadline/hedge knobs.)
constexpr std::string_view kFingerprintTag = "greensched-sweep-fingerprint-v4:";

}  // namespace

std::string grid_fingerprint(const std::vector<SweepPoint>& points,
                             const std::vector<std::uint64_t>& seeds) {
  // Digest every knob a cell result depends on.  Text first (auditable
  // in a debugger), then CRC'd down to a short id.
  std::ostringstream os;
  os.precision(17);
  os << "seeds:";
  for (const std::uint64_t seed : seeds) os << seed << ',';
  for (const SweepPoint& point : points) {
    const PlacementConfig& c = point.config;
    os << "|label=" << point.label << ";policy=" << c.policy
       << ";clients=" << c.client_count << ";tree=" << c.per_cluster_tree
       << ";tasks=" << c.task_count_override << ";spec=" << c.spec_fallback
       << ";sed=" << c.sed.expose_spec << ',' << c.sed.max_concurrent;
    for (const auto& [service, factor] : c.sed.service_speed_factor) {
      os << ',' << service << '=' << factor;
    }
    os
       << ";wl=" << c.workload.requests_per_core << ',' << c.workload.burst_size << ','
       << c.workload.continuous_rate << ',' << c.workload.user_preference << ','
       << c.workload.task.work.value() << ',' << c.workload.task.cores << ','
       << c.workload.task.service << ";chaos=" << c.chaos.to_string()
       << ";retry=" << c.retry.resubmit_on_failure << ',' << c.retry.backoff_retries << ','
       << c.retry.max_attempts << ',' << c.retry.base_backoff_seconds << ','
       << c.retry.backoff_multiplier << ',' << c.retry.max_backoff_seconds << ','
       << c.retry.jitter_fraction << ',' << c.retry.deadline_seconds
       << ";prov=" << c.provisioner << ',' << c.provisioner_check_seconds
       << ";sla=" << c.sla_workload << '|' << c.sla_policy
       << ";gray=" << c.estimation_deadline_seconds << ',' << c.hedge
       << ";migration=" << c.migration << ";clusters=";
    for (const ClusterSetup& setup : c.clusters) {
      os << '[' << setup.name << ',' << setup.spec.model << ',' << setup.spec.cores << ','
         << setup.spec.flops_per_core.value() << ',' << setup.spec.idle_watts.value() << ','
         << setup.spec.peak_watts.value() << ',' << setup.options.node_count << ','
         << setup.options.power_heterogeneity << ',' << setup.options.speed_heterogeneity
         << ',' << setup.options.initially_on << ']';
    }
  }
  const std::string described = os.str();
  char digest[64];
  std::snprintf(digest, sizeof digest, "%08x-%zx-%zx", durable::crc32(described),
                points.size(), seeds.size());
  return std::string(kFingerprintTag) + digest;
}

std::string encode_placement_result(const PlacementResult& r) {
  ByteWriter w;
  w.str(r.policy);
  w.u64(r.seed);
  w.u64(r.tasks);
  w.f64(r.makespan.value());
  w.f64(r.energy.value());
  w.u32(static_cast<std::uint32_t>(r.per_cluster.size()));
  for (const ClusterEnergyRow& row : r.per_cluster) {
    w.str(row.cluster);
    w.f64(row.energy.value());
  }
  w.u32(static_cast<std::uint32_t>(r.tasks_per_server.size()));
  for (const auto& [server, count] : r.tasks_per_server) {
    w.str(server);
    w.u64(count);
  }
  w.u64(r.sim_events);
  w.f64(r.mean_wait_seconds);
  w.u64(r.tasks_completed);
  w.u64(r.tasks_lost);
  w.u64(r.tasks_unfinished);
  w.u64(r.tasks_killed);
  w.u64(r.crashes);
  w.u64(r.repairs);
  w.u64(r.cluster_outages);
  w.u64(r.boot_failures);
  w.u64(r.retries);
  // Provisioning outcome (appended in PR 6; the fingerprint covers the
  // provisioner knobs, so a manifest never mixes formats within a grid).
  w.str(r.provisioner);
  w.u64(r.provisioner_checks);
  w.u64(r.boots_ordered);
  w.u64(r.shutdowns_ordered);
  w.u64(r.degraded_checks);
  w.f64(r.mean_candidates);
  w.f64(r.mean_target_gap);
  w.str(r.candidate_series);
  // SLA outcome (appended in PR 7; covered by the v2 fingerprint tag).
  w.str(r.sla_policy);
  w.u64(r.tasks_rejected);
  w.u64(r.tasks_deferred);
  w.u64(r.sla_violations);
  w.f64(r.revenue_total);
  w.str(r.admission_sequence);
  w.u32(static_cast<std::uint32_t>(r.per_tier.size()));
  for (const PlacementResult::SlaTierRow& row : r.per_tier) {
    w.u64(row.admitted);
    w.u64(row.deferred);
    w.u64(row.rejected);
    w.u64(row.violated);
  }
  // Gray-failure outcome (appended in PR 9; covered by the v3 tag).
  w.u64(r.stalls);
  w.u64(r.flaps);
  w.u64(r.limping_seds);
  w.u64(r.deadline_misses);
  w.u64(r.hedges);
  w.u64(r.hedge_rescues);
  w.u64(r.quarantined_skips);
  w.u64(r.probe_elections);
  w.u64(r.elected_while_quarantined);
  w.u64(r.breaker_opens);
  w.u64(r.breaker_half_opens);
  w.u64(r.breaker_closes);
  w.f64(r.p99_election_wait_seconds);
  // Migration outcome (appended in PR 10; covered by the v4 tag).
  w.str(r.migration);
  w.u64(r.migrations_started);
  w.u64(r.migrations_committed);
  w.u64(r.migrations_aborted);
  w.u64(r.migrations_recovered);
  w.u64(r.drain_requests);
  w.str(r.migration_sequence);
  return w.take();
}

PlacementResult decode_placement_result(std::string_view payload) {
  ByteReader reader(payload);
  PlacementResult r;
  r.policy = reader.str();
  r.seed = reader.u64();
  r.tasks = static_cast<std::size_t>(reader.u64());
  r.makespan = common::Seconds(reader.f64());
  r.energy = common::Joules(reader.f64());
  const std::uint32_t clusters = reader.u32();
  // Never reserve off an untrusted count: each entry needs >= 12 payload
  // bytes, so a count beyond that is a corrupt record, not a big vector.
  if (clusters > reader.remaining() / 12) {
    throw ParseError("durable record: cluster count exceeds payload", 0, 0);
  }
  r.per_cluster.reserve(clusters);
  for (std::uint32_t i = 0; i < clusters; ++i) {
    ClusterEnergyRow row;
    row.cluster = reader.str();
    row.energy = common::Joules(reader.f64());
    r.per_cluster.push_back(std::move(row));
  }
  const std::uint32_t servers = reader.u32();
  if (servers > reader.remaining() / 12) {
    throw ParseError("durable record: server count exceeds payload", 0, 0);
  }
  r.tasks_per_server.reserve(servers);
  for (std::uint32_t i = 0; i < servers; ++i) {
    std::string server = reader.str();
    const std::uint64_t count = reader.u64();
    r.tasks_per_server.emplace_back(std::move(server), static_cast<std::size_t>(count));
  }
  r.sim_events = reader.u64();
  r.mean_wait_seconds = reader.f64();
  r.tasks_completed = static_cast<std::size_t>(reader.u64());
  r.tasks_lost = static_cast<std::size_t>(reader.u64());
  r.tasks_unfinished = static_cast<std::size_t>(reader.u64());
  r.tasks_killed = reader.u64();
  r.crashes = reader.u64();
  r.repairs = reader.u64();
  r.cluster_outages = reader.u64();
  r.boot_failures = reader.u64();
  r.retries = reader.u64();
  r.provisioner = reader.str();
  r.provisioner_checks = reader.u64();
  r.boots_ordered = reader.u64();
  r.shutdowns_ordered = reader.u64();
  r.degraded_checks = reader.u64();
  r.mean_candidates = reader.f64();
  r.mean_target_gap = reader.f64();
  r.candidate_series = reader.str();
  r.sla_policy = reader.str();
  r.tasks_rejected = static_cast<std::size_t>(reader.u64());
  r.tasks_deferred = reader.u64();
  r.sla_violations = static_cast<std::size_t>(reader.u64());
  r.revenue_total = reader.f64();
  r.admission_sequence = reader.str();
  const std::uint32_t tiers = reader.u32();
  if (tiers > reader.remaining() / 32) {
    throw ParseError("durable record: tier count exceeds payload", 0, 0);
  }
  r.per_tier.reserve(tiers);
  for (std::uint32_t i = 0; i < tiers; ++i) {
    PlacementResult::SlaTierRow row;
    row.admitted = static_cast<std::size_t>(reader.u64());
    row.deferred = reader.u64();
    row.rejected = static_cast<std::size_t>(reader.u64());
    row.violated = static_cast<std::size_t>(reader.u64());
    r.per_tier.push_back(row);
  }
  r.stalls = reader.u64();
  r.flaps = reader.u64();
  r.limping_seds = reader.u64();
  r.deadline_misses = reader.u64();
  r.hedges = reader.u64();
  r.hedge_rescues = reader.u64();
  r.quarantined_skips = reader.u64();
  r.probe_elections = reader.u64();
  r.elected_while_quarantined = reader.u64();
  r.breaker_opens = reader.u64();
  r.breaker_half_opens = reader.u64();
  r.breaker_closes = reader.u64();
  r.p99_election_wait_seconds = reader.f64();
  r.migration = reader.str();
  r.migrations_started = reader.u64();
  r.migrations_committed = reader.u64();
  r.migrations_aborted = reader.u64();
  r.migrations_recovered = reader.u64();
  r.drain_requests = reader.u64();
  r.migration_sequence = reader.str();
  reader.expect_end();
  return r;
}

SweepCheckpoint::SweepCheckpoint(std::filesystem::path dir, std::string fingerprint)
    : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw IoError("cannot create checkpoint directory (" + ec.message() + ")", dir_.string());
  }
  const std::filesystem::path manifest = dir_ / kManifestFile;

  durable::Journal::Replay replay;
  try {
    replay = durable::Journal::replay(manifest);
  } catch (const ParseError& e) {
    GS_LOG_WARN("durable") << "sweep manifest unusable, starting fresh: " << e.what();
    durable::quarantine(manifest);
  }
  tail_truncated_ = replay.truncated;

  if (!replay.records.empty()) {
    // Record 0 is the fingerprint; a mismatch means this directory holds
    // a different experiment's progress.  Refusing is the only safe
    // answer — mixing cells across grids fabricates results.
    if (replay.records.front() != fingerprint) {
      throw ConfigError("sweep checkpoint " + dir_.string() +
                        " belongs to a different grid (fingerprint mismatch); use a fresh "
                        "directory or delete the old manifest");
    }
    for (std::size_t i = 1; i < replay.records.size(); ++i) {
      try {
        ByteReader reader(replay.records[i]);
        const std::size_t cell = static_cast<std::size_t>(reader.u64());
        PlacementResult result = decode_placement_result(replay.records[i].substr(8));
        completed_[cell] = std::move(result);
      } catch (const ParseError& e) {
        // CRC-valid but undecodable: schema drift.  Older cells are
        // fine; drop everything from here on.
        GS_LOG_WARN("durable") << "sweep manifest: stopping replay at record " << i << ": "
                               << e.what();
        tail_truncated_ = true;
        break;
      }
    }
  }

  journal_ = durable::Journal::open(manifest, durable::Journal::Options{});
  if (replay.records.empty()) {
    journal_->append(fingerprint);
    journal_->sync();
  }
}

void SweepCheckpoint::record(std::size_t cell, const PlacementResult& result) {
  ByteWriter w;
  w.u64(static_cast<std::uint64_t>(cell));
  std::string payload = w.take();
  payload += encode_placement_result(result);
  const std::lock_guard<std::mutex> lock(mutex_);
  journal_->append(payload);  // fsync_every = 1: durable before we move on
  completed_[cell] = result;
}

}  // namespace greensched::metrics
