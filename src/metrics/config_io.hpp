// Experiment configuration files.
//
// A PlacementConfig can be saved to / loaded from a small XML document,
// so experiments are shareable artifacts (the CLI's `--config`):
//
//   <experiment policy="POWER" seed="42" clients="1" spec_fallback="0">
//     <cluster machine="taurus" count="4" power_heterogeneity="0.1"/>
//     ...
//     <workload requests_per_core="10" burst="50" rate="2"
//               work_flops="2.1e11" service="cpu-bound"/>
//   </experiment>
//
// Machines are referenced by catalog name.
#pragma once

#include <string>

#include "metrics/experiment.hpp"
#include "xmlite/xml.hpp"

namespace greensched::metrics {

[[nodiscard]] xmlite::Document config_to_xml(const PlacementConfig& config);
[[nodiscard]] std::string config_to_string(const PlacementConfig& config);

/// Throws ParseError on structural problems and ConfigError on invalid
/// values (unknown machine, bad counts...).
[[nodiscard]] PlacementConfig config_from_xml(const xmlite::Document& doc);
[[nodiscard]] PlacementConfig config_from_string(const std::string& text);

}  // namespace greensched::metrics
